//! The lane-count-generic kernel backend trait.
//!
//! Every SIMD kernel in this crate exists once per backend as an
//! associated function of [`SimdBackend`]; the public module functions
//! (`unpack`, `scan`, `agg`, `filter`, `transpose`, `svb`) are pure
//! dispatchers over the runtime-selected [`crate::Backend`]. Adding a
//! wider (or narrower — NEON) instruction set is therefore a new trait
//! impl, not a rewrite of the kernel layer.
//!
//! Backend impls are **safe to call on any host**: the `Avx2Backend`
//! and `Avx512Backend` methods re-verify CPU feature availability
//! (a cached atomic load) and fall back to the scalar twin when the
//! host lacks the instructions. This is what makes the cross-backend
//! differential tests sound everywhere, and it keeps all `unsafe`
//! confined to the intrinsic modules ([`crate::avx2`],
//! [`crate::avx512`]).

use crate::tables::{plan32, plan64, PLAN32_MAX_WIDTH, PLAN64_MAX_WIDTH};
use crate::{scalar, LANES32, V32};

/// One kernel set at a fixed SIMD width.
///
/// All methods are safe; implementations internally gate on runtime CPU
/// feature detection. Callers must uphold the documented slice-size
/// preconditions (asserted by the public dispatch wrappers):
///
/// * `unpack_*`: the stream holds `start_bit + width * out.len()` bits.
/// * `widen_rel_i64`: `rel.len() == out.len()`.
/// * `range_mask_i64` / `masked_*`: `mask.len() * 64 >= vals.len()`.
/// * `svb_decode_quads`: `out.len() >= n`, `controls.len() * 4 >= n`,
///   and `data` holds every byte the control stream declares.
pub trait SimdBackend {
    /// 32-bit lanes processed per vector operation.
    const LANES: usize;
    /// Human-readable backend name (matches [`crate::Backend`]'s Display).
    const NAME: &'static str;

    /// Unpacks `out.len()` big-endian packed values of `width` bits
    /// (0..=32) starting at `start_bit`.
    fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]);
    /// Unpacks `out.len()` big-endian packed values of `width` bits
    /// (0..=64) starting at `start_bit`.
    fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]);
    /// Wrapping inclusive prefix scan over the eight lanes of `v`,
    /// seeded by `*carry`; `*carry` becomes the scan total.
    fn inclusive_scan_v32(v: &mut V32, carry: &mut u32);
    /// Algorithm 1 lines 10–15: Delta recovery over the chain layout.
    fn chain_delta_decode(vs: &mut [V32], carry: &mut u32);
    /// Scatters `vs.len() * 8` straight-order values into the chain
    /// layout: `vs[j][l] = scratch[l * n_v + j]`.
    fn layout_transpose(scratch: &[u32], vs: &mut [V32]);
    /// Widens 32-bit two's-complement relative offsets to absolute
    /// `i64`: `out[i] = base + (rel[i] as i32 as i64)`.
    fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]);
    /// Inclusive range bitmask: bit `i` set when `lo <= vals[i] <= hi`.
    fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]);
    /// Exact sum of all values.
    fn sum_i64(vals: &[i64]) -> i128;
    /// Exact sum and count of mask-selected values.
    fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64);
    /// Min/max over all values; `None` when empty.
    fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)>;
    /// Min/max over mask-selected values; `None` when nothing selected.
    fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)>;
    /// Stream VByte quad decode: reads `n` length-coded `u32` values
    /// from the separated `controls`/`data` streams into `out`,
    /// returning the data bytes consumed.
    fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize;
}

/// Portable scalar kernels — the reference semantics every other
/// backend must match bit-for-bit.
pub struct ScalarBackend;

/// 256-bit AVX2 kernels (8 × 32-bit lanes). Falls back to
/// [`ScalarBackend`] when the host lacks AVX2.
pub struct Avx2Backend;

/// AVX-512 unpacking (16 × 32-bit lanes per round) over the AVX2
/// kernel set. Falls back to [`Avx2Backend`] (and transitively scalar)
/// when the host lacks AVX-512F/BW.
pub struct Avx512Backend;

impl SimdBackend for ScalarBackend {
    const LANES: usize = 1;
    const NAME: &'static str = "scalar";

    fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
        scalar::unpack_u32(src, start_bit, width, out)
    }
    fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]) {
        scalar::unpack_u64(src, start_bit, width, out)
    }
    fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
        scalar::inclusive_scan_v32(v, carry)
    }
    fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
        scalar::chain_delta_decode(vs, carry)
    }
    fn layout_transpose(scratch: &[u32], vs: &mut [V32]) {
        scalar::layout_transpose(scratch, vs)
    }
    fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
        scalar::widen_rel_i64(base, rel, out)
    }
    fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
        scalar::range_mask_i64(vals, lo, hi, out)
    }
    fn sum_i64(vals: &[i64]) -> i128 {
        scalar::sum_i64(vals)
    }
    fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
        scalar::masked_sum_i64(vals, mask)
    }
    fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
        scalar::min_max_i64(vals)
    }
    fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
        scalar::masked_min_max_i64(vals, mask)
    }
    fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
        scalar::svb_decode_quads(controls, data, n, out)
    }
}

/// Cached AVX2 availability check (an atomic load after first use).
#[inline]
fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Cached AVX-512F + AVX-512BW availability check.
#[inline]
fn have_avx512() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl SimdBackend for Avx2Backend {
    const LANES: usize = LANES32;
    const NAME: &'static str = "avx2";

    fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            return unpack_u32_avx2(src, start_bit, width, out);
        }
        scalar::unpack_u32(src, start_bit, width, out)
    }

    fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() && (1..=PLAN64_MAX_WIDTH).contains(&width) {
            let plan = plan64(width, (start_bit % 8) as u8);
            let start_byte = start_bit / 8;
            // `win_off` is built from a monotone bit-position sequence,
            // so the last window offset is the maximum.
            let rounds = safe_rounds(
                src.len(),
                start_byte,
                plan.bytes_per_round,
                plan.win_off[3],
                out.len(),
            );
            if rounds > 0 {
                // SAFETY: AVX2 presence checked by `have_avx2()` above;
                // `safe_rounds` bounds `rounds` so every 16-byte window
                // load stays inside `src` and every store inside `out`.
                unsafe { crate::avx2::unpack_u64_plan64(src, start_byte, rounds, plan, out) };
            }
            let done = rounds * LANES32;
            if done < out.len() {
                let bit = start_bit + done * width as usize;
                scalar::unpack_u64(src, bit, width, &mut out[done..]);
            }
            return;
        }
        scalar::unpack_u64(src, start_bit, width, out)
    }

    fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above —
            // the callee's only safety precondition.
            return unsafe { crate::avx2::inclusive_scan_v32(v, carry) };
        }
        scalar::inclusive_scan_v32(v, carry)
    }

    fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() && vs.len() <= LANES32 {
            // SAFETY: AVX2 presence checked by `have_avx2()` above; the
            // callee's `vs.len() <= 8` bound is checked by this branch.
            return unsafe { crate::avx2::chain_delta_decode(vs, carry) };
        }
        scalar::chain_delta_decode(vs, carry)
    }

    fn layout_transpose(scratch: &[u32], vs: &mut [V32]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() && vs.len() == LANES32 {
            debug_assert_eq!(scratch.len(), LANES32 * LANES32);
            // SAFETY: AVX2 presence checked by `have_avx2()` above;
            // `vs.len() == 8` (and the matching 64-element scratch,
            // asserted by the public wrapper) is checked by this branch.
            return unsafe { crate::avx2::layout_transpose8(scratch, vs) };
        }
        scalar::layout_transpose(scratch, vs)
    }

    fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above;
            // equal slice lengths are part of the trait contract,
            // asserted by the public wrapper.
            return unsafe { crate::avx2::widen_rel_i64(base, rel, out) };
        }
        scalar::widen_rel_i64(base, rel, out)
    }

    fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above; the
            // mask-capacity precondition is part of the trait contract.
            return unsafe { crate::avx2::range_mask_i64(vals, lo, hi, out) };
        }
        scalar::range_mask_i64(vals, lo, hi, out)
    }

    fn sum_i64(vals: &[i64]) -> i128 {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above —
            // the callee's only safety precondition.
            return unsafe { crate::avx2::sum_i64(vals) };
        }
        scalar::sum_i64(vals)
    }

    fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above; the
            // mask-capacity precondition is part of the trait contract.
            return unsafe { crate::avx2::masked_sum_i64(vals, mask) };
        }
        scalar::masked_sum_i64(vals, mask)
    }

    fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above —
            // the callee's only safety precondition.
            return unsafe { crate::avx2::min_max_i64(vals) };
        }
        scalar::min_max_i64(vals)
    }

    fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
        // Min/max has no overflow concern; the scalar twin is
        // branch-light and 64-bit min/max needs compare+blend anyway —
        // hot paths use the unmasked kernel on dense runs.
        scalar::masked_min_max_i64(vals, mask)
    }

    fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2 presence checked by `have_avx2()` above; the
            // control/data/out size preconditions are part of the trait
            // contract, asserted by the public wrapper.
            return unsafe { crate::avx2::svb_decode_quads(controls, data, n, out) };
        }
        scalar::svb_decode_quads(controls, data, n, out)
    }
}

impl SimdBackend for Avx512Backend {
    const LANES: usize = 16;
    const NAME: &'static str = "avx512";

    fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx512() && (1..=25).contains(&width) {
            return unpack_u32_avx512(src, start_bit, width, out);
        }
        Avx2Backend::unpack_u32(src, start_bit, width, out)
    }

    // The remaining kernels run at 256-bit width: AVX-512 widens only
    // the unpack rounds (see the backend() doc for why 512-bit is
    // opt-in on current hardware).
    fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]) {
        Avx2Backend::unpack_u64(src, start_bit, width, out)
    }
    fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
        Avx2Backend::inclusive_scan_v32(v, carry)
    }
    fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
        Avx2Backend::chain_delta_decode(vs, carry)
    }
    fn layout_transpose(scratch: &[u32], vs: &mut [V32]) {
        Avx2Backend::layout_transpose(scratch, vs)
    }
    fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
        Avx2Backend::widen_rel_i64(base, rel, out)
    }
    fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
        Avx2Backend::range_mask_i64(vals, lo, hi, out)
    }
    fn sum_i64(vals: &[i64]) -> i128 {
        Avx2Backend::sum_i64(vals)
    }
    fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
        Avx2Backend::masked_sum_i64(vals, mask)
    }
    fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
        Avx2Backend::min_max_i64(vals)
    }
    fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
        Avx2Backend::masked_min_max_i64(vals, mask)
    }
    fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
        Avx2Backend::svb_decode_quads(controls, data, n, out)
    }
}

/// Dispatches one kernel call to the runtime-selected backend. The
/// public module functions are written once with this macro; no
/// backend- or codec-specific branch exists outside the trait impls.
macro_rules! dispatch {
    ($f:ident ( $($a:expr),* $(,)? )) => {
        match $crate::backend() {
            $crate::Backend::Scalar =>
                <$crate::backend::ScalarBackend as $crate::backend::SimdBackend>::$f($($a),*),
            $crate::Backend::Avx2 =>
                <$crate::backend::Avx2Backend as $crate::backend::SimdBackend>::$f($($a),*),
            $crate::Backend::Avx512 =>
                <$crate::backend::Avx512Backend as $crate::backend::SimdBackend>::$f($($a),*),
        }
    };
}
pub(crate) use dispatch;

/// AVX2 unpack driver: picks the Plan32 or Plan64 family, runs whole
/// vector rounds, finishes partial rounds with the scalar twin.
#[cfg(target_arch = "x86_64")]
fn unpack_u32_avx2(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
    if width == 0 {
        out.fill(0);
        return;
    }
    let start_byte = start_bit / 8;
    let align = (start_bit % 8) as u8;
    let rounds = if width <= PLAN32_MAX_WIDTH {
        let plan = plan32(width, align);
        let r = safe_rounds(
            src.len(),
            start_byte,
            plan.bytes_per_round,
            plan.win1_off,
            out.len(),
        );
        if r > 0 {
            // SAFETY: callers reach this driver only after `have_avx2()`
            // (or equivalent runtime detection); `safe_rounds` keeps all
            // window loads in `src` and all stores in `out`.
            unsafe { crate::avx2::unpack_u32_plan32(src, start_byte, r, plan, out) };
        }
        r
    } else {
        let plan = plan64(width, align);
        // Monotone window offsets: the last is the maximum.
        let r = safe_rounds(
            src.len(),
            start_byte,
            plan.bytes_per_round,
            plan.win_off[3],
            out.len(),
        );
        if r > 0 {
            // SAFETY: same argument as the plan32 arm — AVX2 detected at
            // runtime, `safe_rounds` bounds every load and store.
            unsafe { crate::avx2::unpack_u32_plan64(src, start_byte, r, plan, out) };
        }
        r
    };
    let done = rounds * LANES32;
    if done < out.len() {
        let bit = start_bit + done * width as usize;
        scalar::unpack_u32(src, bit, width, &mut out[done..]);
    }
}

/// AVX-512 unpack driver: 512-bit rounds of sixteen values for widths
/// ≤ 25; tails reuse the AVX2 / scalar paths.
#[cfg(target_arch = "x86_64")]
fn unpack_u32_avx512(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
    use crate::avx512::plan512;
    let start_byte = start_bit / 8;
    let align = (start_bit % 8) as u8;
    let plan = plan512(width, align);
    // Monotone window offsets: the last is the maximum.
    let max_win = plan.win_off[3];
    // 16 values per round.
    let full = out.len() / 16;
    let budget = src.len().saturating_sub(start_byte + max_win + 16);
    let by_bytes =
        budget / plan.bytes_per_round + usize::from(src.len() >= start_byte + max_win + 16);
    let rounds = full.min(by_bytes);
    if rounds > 0 {
        // SAFETY: callers reach this driver only after `have_avx512()`;
        // the `rounds` computation above keeps every window load within
        // `src` and `out` holds `rounds * 16` values by construction.
        unsafe { crate::avx512::unpack_u32_plan512(src, start_byte, rounds, plan, out) };
    }
    let done = rounds * 16;
    if done < out.len() {
        let bit = start_bit + done * width as usize;
        Avx2Backend::unpack_u32(src, bit, width, &mut out[done..]);
    }
}

/// Largest number of full rounds whose 16-byte window loads all stay
/// within `len` bytes: round `r` loads from
/// `start + r*bytes_per_round + max_win_off .. + 16`.
fn safe_rounds(
    len: usize,
    start: usize,
    bytes_per_round: usize,
    max_win_off: usize,
    n_out: usize,
) -> usize {
    let full = n_out / LANES32;
    if full == 0 {
        return 0;
    }
    // Need: start + (r-1)*bpr + max_win_off + 16 <= len for the last round.
    let budget = len.saturating_sub(start + max_win_off + 16);
    let by_bytes = budget / bytes_per_round
        + if len >= start + max_win_off + 16 {
            1
        } else {
            0
        };
    full.min(by_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_and_names() {
        assert_eq!(ScalarBackend::LANES, 1);
        assert_eq!(Avx2Backend::LANES, 8);
        assert_eq!(Avx512Backend::LANES, 16);
        assert_eq!(ScalarBackend::NAME, "scalar");
        assert_eq!(Avx2Backend::NAME, "avx2");
        assert_eq!(Avx512Backend::NAME, "avx512");
    }

    #[test]
    fn safe_rounds_zero_when_no_window_fits() {
        // 10 bytes, window offset 5 needs 21 bytes for one round.
        assert_eq!(safe_rounds(10, 0, 10, 5, 64), 0);
        // Exactly one round fits.
        assert_eq!(safe_rounds(21, 0, 10, 5, 64), 1);
    }

    #[test]
    fn wider_backends_fall_back_gracefully() {
        // Callable on any host: the impls gate on runtime detection.
        let vals: Vec<i64> = (-100..100).collect();
        let want = ScalarBackend::sum_i64(&vals);
        assert_eq!(Avx2Backend::sum_i64(&vals), want);
        assert_eq!(Avx512Backend::sum_i64(&vals), want);
    }
}
