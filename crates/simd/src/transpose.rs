//! Construction of the Algorithm 1 unpacked layout: straight-order values
//! are scattered so that each SIMD lane holds a *chain* of `n_v`
//! consecutive deltas across the `n_v` layout vectors (paper Figure 4(d)).
//!
//! The paper builds the layout directly inside the unpack shuffle; we
//! unpack in straight order (dense, one shuffle per eight values) and then
//! transpose in registers. The resulting layout — and therefore the Delta
//! recovery structure of Algorithm 1 — is identical; the transpose is
//! itself a register-only shuffle stage whose cost the `n_v` cost model
//! absorbs (see `etsqp_core::cost`).

use crate::backend::dispatch;
use crate::V32;

/// `n_v` values supported by the layout (powers of two up to the lane
/// count, so the transpose stays a register permutation network).
pub const SUPPORTED_NV: [usize; 4] = [1, 2, 4, 8];

/// Scatters `vs.len() * 8` straight-order values into the chain layout:
/// `vs[j][l] = scratch[l * n_v + j]`.
///
/// # Panics
/// If `scratch.len() != vs.len() * 8` or `vs.len()` is not in
/// [`SUPPORTED_NV`].
pub fn layout_transpose(scratch: &[u32], vs: &mut [V32]) {
    let n_v = vs.len();
    assert!(SUPPORTED_NV.contains(&n_v), "unsupported n_v {n_v}");
    assert_eq!(scratch.len(), n_v * 8);
    dispatch!(layout_transpose(scratch, vs))
}

/// Gathers the chain layout back to straight order:
/// `out[l * n_v + j] = vs[j][l]` — used after Delta recovery to emit
/// decoded values in time order.
pub fn layout_untranspose(vs: &[V32], out: &mut [u32]) {
    let n_v = vs.len();
    assert_eq!(out.len(), n_v * 8);
    for (j, v) in vs.iter().enumerate() {
        for (l, &lane) in v.iter().enumerate() {
            out[l * n_v + j] = lane;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_roundtrips_for_all_nv() {
        for n_v in SUPPORTED_NV {
            let scratch: Vec<u32> = (0..(n_v * 8) as u32)
                .map(|i| i.wrapping_mul(2654435761))
                .collect();
            let mut vs = vec![[0u32; 8]; n_v];
            layout_transpose(&scratch, &mut vs);
            for e in 0..n_v * 8 {
                assert_eq!(vs[e % n_v][e / n_v], scratch[e], "n_v={n_v} e={e}");
            }
            let mut back = vec![0u32; n_v * 8];
            layout_untranspose(&vs, &mut back);
            assert_eq!(back, scratch);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_unsupported_nv() {
        let scratch = vec![0u32; 24];
        let mut vs = vec![[0u32; 8]; 3];
        layout_transpose(&scratch, &mut vs);
    }
}
