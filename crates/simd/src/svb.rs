//! Stream VByte quad-decode kernel (Lemire, Kurz & Rupp).
//!
//! The codec's page format lives in `etsqp-encoding::stream_vbyte`; this
//! module is the width-decode step: turning the separated control/data
//! byte streams into dense 32-bit lanes. On AVX2 each control byte
//! resolves one `pshufb` through the 256-entry table of
//! [`crate::tables::SVB_SHUFFLE`], decoding four values per shuffle —
//! the byte-oriented analog of the bit-unpacking plans.

use crate::backend::dispatch;

/// Decodes `n` length-coded `u32` values from the separated
/// `controls`/`data` streams into `out`, returning the data bytes
/// consumed. Value `k`'s 2-bit length code sits at bits `2·(k mod 4)` of
/// `controls[k / 4]`; its `code + 1` data bytes are little-endian.
///
/// The values are raw coded words — for the delta variant the caller
/// un-zigzags and prefix-sums afterwards (see `etsqp-core::decode`).
///
/// # Panics
/// If `out.len() < n`, `controls.len() * 4 < n`, or `data` does not hold
/// every byte the control stream declares (the page parser validates the
/// exact data length up front).
pub fn decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
    assert!(out.len() >= n, "svb output buffer too small");
    assert!(controls.len() * 4 >= n, "svb control stream too short");
    dispatch!(svb_decode_quads(controls, data, n, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::SVB_LEN;

    /// Encodes `vals` into separated control/data streams (test helper —
    /// the real encoder lives in etsqp-encoding).
    fn encode(vals: &[u32]) -> (Vec<u8>, Vec<u8>) {
        let mut controls = vec![0u8; vals.len().div_ceil(4)];
        let mut data = Vec::new();
        for (k, &v) in vals.iter().enumerate() {
            let len = if v < 1 << 8 {
                1
            } else if v < 1 << 16 {
                2
            } else if v < 1 << 24 {
                3
            } else {
                4
            };
            data.extend_from_slice(&v.to_le_bytes()[..len]);
            controls[k / 4] |= ((len - 1) as u8) << (2 * (k % 4));
        }
        (controls, data)
    }

    #[test]
    fn decodes_all_length_classes() {
        let vals: Vec<u32> = (0..997u32)
            .map(|i| i.wrapping_mul(0x9E3779B9) >> (i % 29))
            .collect();
        let (controls, data) = encode(&vals);
        let mut out = vec![0u32; vals.len()];
        let used = decode_quads(&controls, &data, vals.len(), &mut out);
        assert_eq!(out, vals);
        assert_eq!(used, data.len());
    }

    #[test]
    fn empty_and_sub_quad_tails() {
        for n in 0..9usize {
            let vals: Vec<u32> = (0..n as u32).map(|i| 1 << (i * 3)).collect();
            let (controls, data) = encode(&vals);
            let mut out = vec![0u32; n];
            let used = decode_quads(&controls, &data, n, &mut out);
            assert_eq!(out, vals, "n={n}");
            assert_eq!(used, data.len(), "n={n}");
        }
    }

    #[test]
    fn consumed_bytes_match_len_table() {
        let vals = [1u32, 0x100, 0x10000, 0x1000000, 2, 3, 4, 5];
        let (controls, data) = encode(&vals);
        let mut out = vec![0u32; 8];
        let used = decode_quads(&controls, &data, 8, &mut out);
        assert_eq!(
            used,
            SVB_LEN[controls[0] as usize] as usize + SVB_LEN[controls[1] as usize] as usize
        );
    }
}
