//! # etsqp-simd — SIMD kernels for encoded time-series pipelines
//!
//! This crate provides the instruction-level building blocks used by the
//! ETSQP query pipelines (paper §II-B, §III-A):
//!
//! * **Bit unpacking** of big-endian packed integer arrays into 32-bit (or
//!   64-bit) lanes, via byte shuffles, variable shifts and masks — the
//!   `shuffle / srlv / and` pattern of the paper's Figure 3.
//! * **Delta-chain decoding** over the *unpacked layout* of Algorithm 1:
//!   consecutive deltas live in the same lane across `n_v` vectors, so Delta
//!   recovery is `n_v − 1` lane-wise partial-sum additions, one logarithmic
//!   prefix scan of the chain sums, and `n_v` broadcast additions.
//! * **Filtering** (range compares producing bitmasks) and **masked
//!   aggregation** (sum / count / min / max) over decoded lanes.
//!
//! Every kernel exists once per backend as an associated function of the
//! lane-count-generic [`SimdBackend`] trait: a safe scalar reference
//! ([`ScalarBackend`]), an AVX2 instantiation ([`Avx2Backend`]) using the
//! instruction families the paper names (`_mm256_shuffle_epi8`,
//! `_mm256_srlv_epi32`, `_mm256_and_si256`, `_mm256_permutevar8x32_epi32`),
//! and an AVX-512 instantiation ([`Avx512Backend`]) widening the unpack
//! rounds to sixteen values. The public module functions dispatch to the
//! backend chosen once at startup (`backend()`); setting the environment
//! variable `ETSQP_FORCE_SCALAR=1` forces the scalar twin, which the
//! test-suite uses for differential testing, and
//! `ETSQP_FORCE_BACKEND={scalar,avx512}` overrides the default.
//!
//! All unpacking kernels consume **big-endian bit streams** (MSB-first
//! within each byte), matching how IoT databases flush encoded pages
//! (paper Figure 1(b)).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod agg;
pub mod backend;
pub mod filter;
pub mod scan;
pub mod svb;
pub mod tables;
pub mod transpose;
pub mod unpack;

mod avx2;
mod avx512;
#[doc(hidden)]
pub mod scalar;

pub use backend::{Avx2Backend, Avx512Backend, ScalarBackend, SimdBackend};

/// The SIMD backend selected at process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar implementations (bit-exact twins of the AVX2 path).
    Scalar,
    /// 256-bit AVX2 implementations.
    Avx2,
    /// AVX-512 unpacking (512-bit rounds) over the AVX2 kernel set.
    Avx512,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Scalar => write!(f, "scalar"),
            Backend::Avx2 => write!(f, "avx2"),
            Backend::Avx512 => write!(f, "avx512"),
        }
    }
}

/// Returns the backend used by all kernels in this crate.
///
/// Detection runs once; `ETSQP_FORCE_SCALAR=1` overrides to [`Backend::Scalar`].
pub fn backend() -> Backend {
    use std::sync::OnceLock;
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if std::env::var_os("ETSQP_FORCE_SCALAR").is_some_and(|v| v == "1") {
            return Backend::Scalar;
        }
        let forced = std::env::var("ETSQP_FORCE_BACKEND").ok();
        match forced.as_deref() {
            Some("scalar") => return Backend::Scalar,
            #[cfg(target_arch = "x86_64")]
            Some("avx512")
                if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw") =>
            {
                return Backend::Avx512;
            }
            _ => {}
        }
        // AVX2 is the default even on AVX-512 hardware: 512-bit unpack
        // rounds measured slightly slower on this class of machines
        // (window-insert overhead and frequency scaling) — see
        // EXPERIMENTS.md. Opt in with ETSQP_FORCE_BACKEND=avx512.
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Backend::Avx2;
            }
        }
        #[allow(unreachable_code)]
        Backend::Scalar
    })
}

/// Number of 32-bit lanes in one SIMD vector (256-bit AVX2 register).
pub const LANES32: usize = 8;
/// Number of 64-bit lanes in one SIMD vector.
pub const LANES64: usize = 4;

/// A 256-bit vector of eight 32-bit lanes, the unit the unpack/delta
/// kernels operate on (paper's `V'_i` vectors in Figure 4).
pub type V32 = [u32; LANES32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable_across_calls() {
        assert_eq!(backend(), backend());
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::Scalar.to_string(), "scalar");
        assert_eq!(Backend::Avx2.to_string(), "avx2");
    }
}
