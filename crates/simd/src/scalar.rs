//! Scalar twins of every SIMD kernel.
//!
//! These are the reference semantics: the AVX2 implementations in
//! [`crate::avx2`] must produce bit-identical results, which the
//! differential property tests assert. They are also the fallback on
//! non-AVX2 hardware and the tail path for partial rounds.

use crate::{LANES32, V32};

/// Reads `w` bits (1..=64) at bit position `p` from a big-endian bit
/// stream. Bit 0 of the stream is the MSB of `src[0]`.
#[inline]
#[allow(clippy::needless_range_loop)] // byte window indexing reads clearest
pub fn read_bits_be(src: &[u8], p: usize, w: usize) -> u64 {
    debug_assert!((1..=64).contains(&w));
    let first = p / 8;
    let last = (p + w - 1) / 8;
    debug_assert!(last < src.len(), "bit read out of bounds");
    let mut acc: u128 = 0;
    for b in first..=last {
        acc = (acc << 8) | src[b] as u128;
    }
    let total_bits = (last - first + 1) * 8;
    let shift = total_bits - (p - first * 8) - w;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    ((acc >> shift) as u64) & mask
}

/// Unpacks `out.len()` values of `width` bits (0..=32) starting at
/// `start_bit` into 32-bit outputs.
pub fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
    if width == 0 {
        out.fill(0);
        return;
    }
    let w = width as usize;
    let mut p = start_bit;
    for o in out.iter_mut() {
        *o = read_bits_be(src, p, w) as u32;
        p += w;
    }
}

/// Unpacks `out.len()` values of `width` bits (0..=64) starting at
/// `start_bit` into 64-bit outputs.
pub fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]) {
    if width == 0 {
        out.fill(0);
        return;
    }
    let w = width as usize;
    let mut p = start_bit;
    for o in out.iter_mut() {
        *o = read_bits_be(src, p, w);
        p += w;
    }
}

/// Wrapping inclusive prefix scan over the eight lanes of `v`, seeded with
/// `*carry`; `*carry` becomes the scan total (the last lane's value).
pub fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
    let mut acc = *carry;
    for lane in v.iter_mut() {
        acc = acc.wrapping_add(*lane);
        *lane = acc;
    }
    *carry = acc;
}

/// Algorithm 1 lines 10–15 (Delta recovery over the unpacked layout).
///
/// On input, `vs[j][l]` holds the delta of global element `l * n_v + j`
/// (chains of `n_v` consecutive deltas per lane). On output, `vs[j][l]` is
/// the *inclusive* prefix sum of all deltas up to that element, seeded with
/// `*carry`; `*carry` becomes the running total after the round.
///
/// All arithmetic wraps in 32 bits (two's-complement correct for relative
/// offsets smaller than 2³¹ in magnitude; callers guard via page stats).
pub fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
    let n_v = vs.len();
    if n_v == 0 {
        return;
    }
    // Partial sums within each chain: vs[j] += vs[j-1], lane-wise.
    for j in 1..n_v {
        let (prev, cur) = vs.split_at_mut(j);
        let prev = &prev[j - 1];
        for l in 0..LANES32 {
            cur[0][l] = cur[0][l].wrapping_add(prev[l]);
        }
    }
    // Chain totals live in the last vector; exclusive scan them across
    // lanes, seeded with the carry (prefix-sum vector of Algorithm 1 l.13).
    let totals = vs[n_v - 1];
    let mut prefix = [0u32; LANES32];
    let mut acc = *carry;
    for l in 0..LANES32 {
        prefix[l] = acc;
        acc = acc.wrapping_add(totals[l]);
    }
    *carry = acc;
    // Broadcast-add the prefix vector to every partial-sum vector (l.15).
    for v in vs.iter_mut() {
        for l in 0..LANES32 {
            v[l] = v[l].wrapping_add(prefix[l]);
        }
    }
}

/// Scatters `n_v * 8` straight-order values into the Algorithm 1 layout:
/// output vector `j`, lane `l` receives element `l * n_v + j`.
///
/// `scratch` holds the straight values (`scratch[k*8 + i]` = element
/// `k*8+i`); `n_v` must be one of 1, 2, 4, 8.
pub fn layout_transpose(scratch: &[u32], vs: &mut [V32]) {
    let n_v = vs.len();
    debug_assert_eq!(scratch.len(), n_v * LANES32);
    for (j, v) in vs.iter_mut().enumerate() {
        for (l, lane) in v.iter_mut().enumerate() {
            *lane = scratch[l * n_v + j];
        }
    }
}

/// Widens 32-bit relative offsets (two's-complement) to absolute `i64`
/// values: `out[i] = base + (rel[i] as i32 as i64)`.
pub fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
    debug_assert_eq!(rel.len(), out.len());
    for (o, &r) in out.iter_mut().zip(rel) {
        *o = base.wrapping_add(r as i32 as i64);
    }
}

/// Builds a bitmask of elements within `[lo, hi]` (inclusive). Bit `i` of
/// `out[i / 64]` is set when `lo <= vals[i] <= hi`.
pub fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
    debug_assert!(out.len() * 64 >= vals.len());
    out.fill(0);
    for (i, &v) in vals.iter().enumerate() {
        if v >= lo && v <= hi {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Sums `vals[i]` for every set bit in `mask`, returning `(sum, count)`.
/// The sum is exact (`i128`).
pub fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
    let mut sum = 0i128;
    let mut count = 0u64;
    for (i, &v) in vals.iter().enumerate() {
        if mask[i / 64] & (1u64 << (i % 64)) != 0 {
            sum += v as i128;
            count += 1;
        }
    }
    (sum, count)
}

/// Exact sum of all values.
pub fn sum_i64(vals: &[i64]) -> i128 {
    vals.iter().map(|&v| v as i128).sum()
}

/// Minimum and maximum of `vals`; `None` when empty.
pub fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
    let mut it = vals.iter();
    let &first = it.next()?;
    let mut mn = first;
    let mut mx = first;
    for &v in it {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    Some((mn, mx))
}

/// Stream VByte quad decode, one value at a time: reads `n` length-coded
/// `u32` values from the separated control/data streams into `out` and
/// returns the data bytes consumed. Value `k`'s 2-bit length code sits at
/// bits `2·(k mod 4)` of `controls[k / 4]`; its `code + 1` data bytes are
/// little-endian.
///
/// Callers guarantee `out.len() >= n`, `controls.len() * 4 >= n` and that
/// `data` holds every declared byte (validated by the page parser).
pub fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
    debug_assert!(out.len() >= n);
    debug_assert!(controls.len() * 4 >= n);
    let mut pos = 0usize;
    for (k, o) in out.iter_mut().take(n).enumerate() {
        let len = ((controls[k / 4] >> (2 * (k % 4))) & 3) as usize + 1;
        let mut b = [0u8; 4];
        b[..len].copy_from_slice(&data[pos..pos + len]);
        *o = u32::from_le_bytes(b);
        pos += len;
    }
    pos
}

/// Min/max over masked elements only; `None` when the mask selects nothing.
pub fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
    let mut mn = i64::MAX;
    let mut mx = i64::MIN;
    let mut any = false;
    for (i, &v) in vals.iter().enumerate() {
        if mask[i / 64] & (1u64 << (i % 64)) != 0 {
            mn = mn.min(v);
            mx = mx.max(v);
            any = true;
        }
    }
    any.then_some((mn, mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bits_be_single_byte() {
        // 0b1011_0110: bits 0..3 (MSB-first) = 0b101 = 5.
        let src = [0b1011_0110u8];
        assert_eq!(read_bits_be(&src, 0, 3), 0b101);
        assert_eq!(read_bits_be(&src, 3, 5), 0b10110);
    }

    #[test]
    fn read_bits_be_crosses_bytes() {
        let src = [0xAB, 0xCD, 0xEF];
        // Full 24 bits.
        assert_eq!(read_bits_be(&src, 0, 24), 0xABCDEF);
        // 12 bits starting at bit 6: bits 6..18 of 0xABCDEF.
        let all = 0xABCDEFu64;
        assert_eq!(read_bits_be(&src, 6, 12), (all >> 6) & 0xFFF);
    }

    #[test]
    fn chain_decode_matches_naive_prefix_sum() {
        // 3 vectors (n_v = 3 is allowed for the scalar path), 24 deltas.
        let deltas: Vec<u32> = (1..=24).collect();
        let n_v = 3;
        let mut vs = vec![[0u32; LANES32]; n_v];
        for (e, &d) in deltas.iter().enumerate() {
            vs[e % n_v][e / n_v] = d;
        }
        let mut carry = 100u32;
        chain_delta_decode(&mut vs, &mut carry);
        let mut acc = 100u32;
        for (e, &d) in deltas.iter().enumerate() {
            acc = acc.wrapping_add(d);
            assert_eq!(vs[e % n_v][e / n_v], acc, "element {e}");
        }
        assert_eq!(carry, acc);
    }

    #[test]
    fn layout_transpose_roundtrip() {
        for n_v in [1usize, 2, 4, 8] {
            let scratch: Vec<u32> = (0..(n_v * 8) as u32).collect();
            let mut vs = vec![[0u32; LANES32]; n_v];
            layout_transpose(&scratch, &mut vs);
            for e in 0..n_v * 8 {
                assert_eq!(vs[e % n_v][e / n_v], e as u32);
            }
        }
    }

    #[test]
    fn masked_sum_counts_only_set_bits() {
        let vals: Vec<i64> = (0..100).collect();
        let mut mask = vec![0u64; 2];
        mask[0] = 0b1010; // elements 1 and 3
        let (s, c) = masked_sum_i64(&vals, &mask);
        assert_eq!((s, c), (4, 2));
    }

    #[test]
    fn widen_handles_negative_offsets() {
        let rel = [(-5i32) as u32, 7];
        let mut out = [0i64; 2];
        widen_rel_i64(1000, &rel, &mut out);
        assert_eq!(out, [995, 1007]);
    }
}
