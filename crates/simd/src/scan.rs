//! Delta-recovery kernels: lane prefix scans and the Algorithm 1
//! chain-layout decode (paper §III-A.1, Figures 4–5).

use crate::backend::dispatch;
use crate::V32;

/// Wrapping inclusive prefix scan over the eight lanes of `v`, seeded with
/// `*carry`; `*carry` becomes the scan total.
///
/// This is the *straight-order* Delta strategy (one scan per vector), used
/// by the SBoost baseline and as an ablation against the chain layout.
pub fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
    dispatch!(inclusive_scan_v32(v, carry))
}

/// Algorithm 1 lines 10–15: Delta recovery over the unpacked chain layout.
///
/// `vs[j][l]` holds the delta of element `l * vs.len() + j` on input and
/// its inclusive prefix sum (seeded by `*carry`) on output. Arithmetic
/// wraps in 32 bits; callers use page statistics to guarantee relative
/// offsets fit (two's-complement) before choosing this path.
pub fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
    dispatch!(chain_delta_decode(vs, carry))
}

/// Widens 32-bit two's-complement relative offsets to absolute `i64`:
/// `out[i] = base + (rel[i] as i32 as i64)`.
pub fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
    assert_eq!(rel.len(), out.len());
    dispatch!(widen_rel_i64(base, rel, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LANES32;

    #[test]
    fn scan_seeds_and_carries() {
        let mut v: V32 = [1, 2, 3, 4, 5, 6, 7, 8];
        let mut carry = 10;
        inclusive_scan_v32(&mut v, &mut carry);
        assert_eq!(v, [11, 13, 16, 20, 25, 31, 38, 46]);
        assert_eq!(carry, 46);
    }

    #[test]
    fn scan_wraps() {
        let mut v: V32 = [u32::MAX, 1, 0, 0, 0, 0, 0, 0];
        let mut carry = 2;
        inclusive_scan_v32(&mut v, &mut carry);
        assert_eq!(v[0], 1); // 2 + MAX wraps to 1
        assert_eq!(v[1], 2);
    }

    #[test]
    fn chain_decode_n8_matches_prefix_sum() {
        let deltas: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        let n_v = 8;
        let mut vs = vec![[0u32; LANES32]; n_v];
        for (e, &d) in deltas.iter().enumerate() {
            vs[e % n_v][e / n_v] = d;
        }
        let mut carry = 7u32;
        chain_delta_decode(&mut vs, &mut carry);
        let mut acc = 7u32;
        for (e, &d) in deltas.iter().enumerate() {
            acc = acc.wrapping_add(d);
            assert_eq!(vs[e % n_v][e / n_v], acc, "element {e}");
        }
        assert_eq!(carry, acc);
    }

    #[test]
    fn chain_decode_all_nv() {
        for n_v in [1usize, 2, 4, 8] {
            let n = n_v * LANES32;
            let deltas: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x01010101)).collect();
            let mut vs = vec![[0u32; LANES32]; n_v];
            for (e, &d) in deltas.iter().enumerate() {
                vs[e % n_v][e / n_v] = d;
            }
            let mut carry = 0u32;
            chain_delta_decode(&mut vs, &mut carry);
            let mut acc = 0u32;
            for (e, &d) in deltas.iter().enumerate() {
                acc = acc.wrapping_add(d);
                assert_eq!(vs[e % n_v][e / n_v], acc, "n_v={n_v} element {e}");
            }
        }
    }

    #[test]
    fn widen_matches_scalar() {
        let rel: Vec<u32> = (0..19).map(|i| (i - 9) as u32).collect();
        let mut out = vec![0i64; rel.len()];
        widen_rel_i64(-1_000_000_007, &rel, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, -1_000_000_007 + (i as i64 - 9));
        }
    }
}
