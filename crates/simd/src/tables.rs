//! Precomputed unpacking layout plans — the Rust analog of the paper's
//! Just-in-Time decoder generation (§III-B).
//!
//! For every (packing width, bit alignment) pair we derive once, and cache,
//! the shuffle index vectors, per-lane shift counts and the value mask that
//! the `shuffle → srlv → and` unpacking sequence of Figure 3 needs. At
//! query time the pipeline *looks the plan up* instead of computing indices
//! per round, exactly as §III-B prescribes.
//!
//! Two plan families exist:
//!
//! * [`Plan32`] — widths 1..=25: each 32-bit output lane gathers at most
//!   four source bytes, so one 256-bit shuffle unpacks eight values.
//! * [`Plan64`] — widths 1..=57: each 64-bit lane gathers at most eight
//!   source bytes; eight values need two 256-bit vectors. This family
//!   serves both wide 32-bit values (26..=32) and 64-bit unpacking.
//!
//! A key invariant exploited throughout: a round of **eight** values spans
//! exactly `width` bytes (8·w bits), so the bit alignment within the first
//! byte is identical for every round of a page. One plan therefore covers
//! the entire page.

use std::sync::OnceLock;

/// Per-control-byte `pshufb` masks for the Stream VByte quad decode
/// (Lemire/Kurz/Rupp): entry `c` scatters the `SVB_LEN[c]` little-endian
/// data bytes of a four-value group into four 32-bit lanes; `0xFF`
/// positions (high bit set) zero-fill the lane's upper bytes.
///
/// Built in a `const` context so the table is baked into the binary —
/// the byte-oriented analog of the bit-unpacking plans below.
pub static SVB_SHUFFLE: [[u8; 16]; 256] = build_svb_shuffle();

/// Total data bytes consumed by the quad of each control byte
/// (`Σ len_k`, where `len_k = ((c >> 2k) & 3) + 1`).
pub static SVB_LEN: [u8; 256] = build_svb_len();

const fn svb_quad_len(c: u8) -> u8 {
    let mut total = 0u8;
    let mut k = 0;
    while k < 4 {
        total += ((c >> (2 * k)) & 3) + 1;
        k += 1;
    }
    total
}

const fn build_svb_len() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        t[c] = svb_quad_len(c as u8);
        c += 1;
    }
    t
}

const fn build_svb_shuffle() -> [[u8; 16]; 256] {
    let mut t = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut off = 0u8;
        let mut k = 0usize;
        while k < 4 {
            let len = (((c as u8) >> (2 * k)) & 3) + 1;
            let mut j = 0u8;
            while j < 4 {
                t[c][k * 4 + j as usize] = if j < len { off + j } else { 0xFF };
                j += 1;
            }
            off += len;
            k += 1;
        }
        c += 1;
    }
    t
}

/// Unpacking plan for widths 1..=25 (four source bytes per 32-bit lane).
#[derive(Debug, Clone)]
pub struct Plan32 {
    /// Packing width in bits.
    pub width: u8,
    /// `start_bit % 8` of the first value of every round.
    pub align: u8,
    /// Shuffle indices for lanes 0..4, relative to the low 16-byte window.
    /// Byte order is reversed per lane so a little-endian 32-bit lane load
    /// yields the big-endian stream bytes.
    pub shuffle_lo: [u8; 16],
    /// Shuffle indices for lanes 4..8, relative to the high 16-byte window.
    pub shuffle_hi: [u8; 16],
    /// Per-lane right-shift counts (`srlv` operands).
    pub shifts: [u32; 8],
    /// Value mask `(1 << width) - 1`.
    pub mask: u32,
    /// Byte offset of the high window from the low window.
    pub win1_off: usize,
    /// Bytes consumed per round of eight values (= `width`).
    pub bytes_per_round: usize,
}

/// Unpacking plan for widths 1..=57 using 64-bit lanes (eight source bytes
/// per lane, four values per 256-bit vector, eight values per round).
#[derive(Debug, Clone)]
pub struct Plan64 {
    /// Packing width in bits.
    pub width: u8,
    /// `start_bit % 8` of the first value of every round.
    pub align: u8,
    /// Shuffle indices for the vector holding values 0..4: two 16-byte
    /// halves, each gathering two 64-bit lanes.
    pub shuffle_a: [[u8; 16]; 2],
    /// Shuffle indices for the vector holding values 4..8.
    pub shuffle_b: [[u8; 16]; 2],
    /// Window byte offsets (relative to the round's base byte) for the four
    /// 16-byte loads: `[a_lo, a_hi, b_lo, b_hi]`.
    pub win_off: [usize; 4],
    /// Per-lane right-shift counts for vector A (values 0..4).
    pub shifts_a: [u64; 4],
    /// Per-lane right-shift counts for vector B (values 4..8).
    pub shifts_b: [u64; 4],
    /// Value mask `(1 << width) - 1`.
    pub mask: u64,
    /// Bytes consumed per round of eight values (= `width`).
    pub bytes_per_round: usize,
}

/// Maximum width served by [`Plan32`].
pub const PLAN32_MAX_WIDTH: u8 = 25;
/// Maximum width served by [`Plan64`].
pub const PLAN64_MAX_WIDTH: u8 = 57;

#[allow(clippy::needless_range_loop)] // lane index i is the spec variable
fn build_plan32(width: u8, align: u8) -> Plan32 {
    assert!((1..=PLAN32_MAX_WIDTH).contains(&width));
    assert!(align < 8);
    let w = width as usize;
    let a = align as usize;
    let mut shuffle_lo = [0u8; 16];
    let mut shuffle_hi = [0u8; 16];
    let mut shifts = [0u32; 8];
    // Bit position of value i relative to the round's base byte.
    let p = |i: usize| a + i * w;
    // High window starts at the byte containing value 4.
    let win1_off = p(4) / 8;
    for i in 0..8 {
        let (tbl, base_byte) = if i < 4 {
            (&mut shuffle_lo, 0usize)
        } else {
            (&mut shuffle_hi, win1_off)
        };
        let r = p(i) / 8 - base_byte;
        debug_assert!(
            r + 3 < 16,
            "window overflow: w={width} align={align} lane={i}"
        );
        let lane = (i % 4) * 4;
        // Reverse bytes: little-endian lane := big-endian stream bytes.
        tbl[lane] = (r + 3) as u8;
        tbl[lane + 1] = (r + 2) as u8;
        tbl[lane + 2] = (r + 1) as u8;
        tbl[lane + 3] = r as u8;
        shifts[i] = (32 - (p(i) % 8) - w) as u32;
    }
    let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
    Plan32 {
        width,
        align,
        shuffle_lo,
        shuffle_hi,
        shifts,
        mask,
        win1_off,
        bytes_per_round: w,
    }
}

fn build_plan64(width: u8, align: u8) -> Plan64 {
    assert!((1..=PLAN64_MAX_WIDTH).contains(&width));
    assert!(align < 8);
    let w = width as usize;
    let a = align as usize;
    let p = |i: usize| a + i * w;
    // Four 16-byte windows, each serving two consecutive values.
    let win_off = [p(0) / 8, p(2) / 8, p(4) / 8, p(6) / 8];
    let mut shuffle_a = [[0u8; 16]; 2];
    let mut shuffle_b = [[0u8; 16]; 2];
    let mut shifts_a = [0u64; 4];
    let mut shifts_b = [0u64; 4];
    for i in 0..8 {
        let win = i / 2;
        let r = p(i) / 8 - win_off[win];
        debug_assert!(
            r + 7 < 16,
            "window overflow: w={width} align={align} lane={i}"
        );
        let tbl = if i < 4 {
            &mut shuffle_a[win][..]
        } else {
            &mut shuffle_b[win - 2][..]
        };
        let lane = (i % 2) * 8;
        for b in 0..8 {
            // Reverse eight bytes per 64-bit lane.
            tbl[lane + b] = (r + 7 - b) as u8;
        }
        let s = (64 - (p(i) % 8) - w) as u64;
        if i < 4 {
            shifts_a[i] = s;
        } else {
            shifts_b[i - 4] = s;
        }
    }
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    Plan64 {
        width,
        align,
        shuffle_a,
        shuffle_b,
        win_off,
        shifts_a,
        shifts_b,
        mask,
        bytes_per_round: w,
    }
}

/// Looks up the cached [`Plan32`] for `(width, align)`.
///
/// # Panics
/// If `width` is outside `1..=25` or `align >= 8`.
pub fn plan32(width: u8, align: u8) -> &'static Plan32 {
    static PLANS: OnceLock<Vec<Plan32>> = OnceLock::new();
    let plans = PLANS.get_or_init(|| {
        let mut v = Vec::with_capacity(PLAN32_MAX_WIDTH as usize * 8);
        for w in 1..=PLAN32_MAX_WIDTH {
            for a in 0..8 {
                v.push(build_plan32(w, a));
            }
        }
        v
    });
    assert!(
        (1..=PLAN32_MAX_WIDTH).contains(&width),
        "plan32 width {width}"
    );
    assert!(align < 8);
    &plans[(width as usize - 1) * 8 + align as usize]
}

/// Looks up the cached [`Plan64`] for `(width, align)`.
///
/// # Panics
/// If `width` is outside `1..=57` or `align >= 8`.
pub fn plan64(width: u8, align: u8) -> &'static Plan64 {
    static PLANS: OnceLock<Vec<Plan64>> = OnceLock::new();
    let plans = PLANS.get_or_init(|| {
        let mut v = Vec::with_capacity(PLAN64_MAX_WIDTH as usize * 8);
        for w in 1..=PLAN64_MAX_WIDTH {
            for a in 0..8 {
                v.push(build_plan64(w, a));
            }
        }
        v
    });
    assert!(
        (1..=PLAN64_MAX_WIDTH).contains(&width),
        "plan64 width {width}"
    );
    assert!(align < 8);
    &plans[(width as usize - 1) * 8 + align as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan32_ten_bit_aligned_matches_paper_example() {
        // Paper Figure 3: 10-bit packing, byte-aligned start.
        let p = plan32(10, 0);
        assert_eq!(p.bytes_per_round, 10);
        assert_eq!(p.mask, 0x3FF);
        // Value 0 starts at bit 0: shift = 32 - 0 - 10 = 22.
        assert_eq!(p.shifts[0], 22);
        // Value 1 starts at bit 10: in-byte offset 2, shift = 32 - 2 - 10 = 20.
        assert_eq!(p.shifts[1], 20);
        // Value 4 starts at bit 40 = byte 5; high window starts there.
        assert_eq!(p.win1_off, 5);
        // Lane 0 gathers bytes 3,2,1,0 (reversed).
        assert_eq!(&p.shuffle_lo[0..4], &[3, 2, 1, 0]);
    }

    #[test]
    fn plan32_covers_all_widths_and_aligns() {
        for w in 1..=PLAN32_MAX_WIDTH {
            for a in 0..8 {
                let p = plan32(w, a);
                assert_eq!(p.width, w);
                assert_eq!(p.align, a);
                for i in 0..8 {
                    assert!(p.shifts[i] < 32);
                }
                // All shuffle indices must stay inside the 16-byte window.
                assert!(p.shuffle_lo.iter().all(|&b| b < 16));
                assert!(p.shuffle_hi.iter().all(|&b| b < 16));
            }
        }
    }

    #[test]
    fn plan64_covers_all_widths_and_aligns() {
        for w in 1..=PLAN64_MAX_WIDTH {
            for a in 0..8 {
                let p = plan64(w, a);
                assert_eq!(p.width, w);
                for i in 0..4 {
                    assert!(p.shifts_a[i] < 64);
                    assert!(p.shifts_b[i] < 64);
                }
                for half in 0..2 {
                    assert!(p.shuffle_a[half].iter().all(|&b| b < 16));
                    assert!(p.shuffle_b[half].iter().all(|&b| b < 16));
                }
            }
        }
    }

    #[test]
    fn plan_alignment_is_round_invariant() {
        // Eight values of width w consume exactly w bytes, so the alignment
        // of round k+1 equals that of round k.
        for w in 1u64..=25 {
            assert_eq!((8 * w) % 8, 0);
        }
    }

    #[test]
    fn svb_tables_agree_with_control_semantics() {
        for c in 0..256usize {
            let mut off = 0u8;
            for k in 0..4 {
                let len = ((c >> (2 * k)) & 3) as u8 + 1;
                for j in 0..4u8 {
                    let e = SVB_SHUFFLE[c][k * 4 + j as usize];
                    if j < len {
                        assert_eq!(e, off + j, "c={c:#04x} k={k} j={j}");
                    } else {
                        assert_eq!(e, 0xFF, "c={c:#04x} k={k} j={j}");
                    }
                }
                off += len;
            }
            assert_eq!(SVB_LEN[c], off, "c={c:#04x}");
            assert!((4..=16).contains(&SVB_LEN[c]));
        }
        // Spot checks: all-ones control = 4×1 byte; all-fours = 16 bytes.
        assert_eq!(SVB_LEN[0x00], 4);
        assert_eq!(SVB_LEN[0xFF], 16);
        assert_eq!(
            &SVB_SHUFFLE[0x00][..8],
            &[0, 0xFF, 0xFF, 0xFF, 1, 0xFF, 0xFF, 0xFF]
        );
        assert_eq!(&SVB_SHUFFLE[0xFF][..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic]
    fn plan32_rejects_width_zero() {
        plan32(0, 0);
    }

    #[test]
    #[should_panic]
    fn plan32_rejects_wide_width() {
        plan32(26, 0);
    }
}
