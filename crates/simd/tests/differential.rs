//! Cross-backend differential battery: every kernel of the
//! [`SimdBackend`] trait runs through **every compiled-in backend** on
//! the same inputs and must agree bit-for-bit with the scalar
//! reference. Backend impls gate on runtime feature detection and fall
//! back to scalar, so this suite is sound on any host — on AVX2/AVX-512
//! machines it exercises the real vector kernels.
//!
//! This replaces the older ad-hoc per-function avx2-vs-scalar checks:
//! adding a backend (or a kernel) extends the table here, not the test
//! logic.

use etsqp_simd::{
    agg, filter, scan, svb, transpose, unpack, Avx2Backend, Avx512Backend, ScalarBackend,
    SimdBackend,
};
use proptest::prelude::*;

/// Packs `vals` of `width` bits into a big-endian stream at `start_bit`.
fn pack_be(vals: &[u64], width: usize, start_bit: usize) -> Vec<u8> {
    let total_bits = start_bit + vals.len() * width;
    let mut bytes = vec![0u8; total_bits.div_ceil(8)];
    let mut p = start_bit;
    for &v in vals {
        for b in 0..width {
            if (v >> (width - 1 - b)) & 1 != 0 {
                bytes[(p + b) / 8] |= 1 << (7 - (p + b) % 8);
            }
        }
        p += width;
    }
    bytes
}

/// Encodes `vals` into separated Stream VByte control/data streams.
fn svb_encode(vals: &[u32]) -> (Vec<u8>, Vec<u8>) {
    let mut controls = vec![0u8; vals.len().div_ceil(4)];
    let mut data = Vec::new();
    for (k, &v) in vals.iter().enumerate() {
        let len = (4 - v.leading_zeros() as usize / 8).max(1);
        data.extend_from_slice(&v.to_le_bytes()[..len]);
        controls[k / 4] |= ((len - 1) as u8) << (2 * (k % 4));
    }
    (controls, data)
}

/// Runs `$case::<B>($args...)` for every compiled-in backend and asserts
/// bit-exact equality with the scalar reference result.
macro_rules! check_backends {
    ($case:ident ( $($arg:expr),* $(,)? )) => {{
        let want = $case::<ScalarBackend>($($arg),*);
        prop_assert_eq!($case::<Avx2Backend>($($arg),*), want.clone());
        prop_assert_eq!($case::<Avx512Backend>($($arg),*), want);
    }};
}

// One observable-state probe per trait kernel. Each returns everything
// the kernel can mutate so equality is total, not partial.

fn unpack32<B: SimdBackend>(bytes: &[u8], start_bit: usize, width: u8, n: usize) -> Vec<u32> {
    let mut out = vec![0u32; n];
    B::unpack_u32(bytes, start_bit, width, &mut out);
    out
}

fn unpack64<B: SimdBackend>(bytes: &[u8], start_bit: usize, width: u8, n: usize) -> Vec<u64> {
    let mut out = vec![0u64; n];
    B::unpack_u64(bytes, start_bit, width, &mut out);
    out
}

fn scan_v32<B: SimdBackend>(v: [u32; 8], seed: u32) -> ([u32; 8], u32) {
    let mut v = v;
    let mut carry = seed;
    B::inclusive_scan_v32(&mut v, &mut carry);
    (v, carry)
}

fn chain_decode<B: SimdBackend>(vs: &[[u32; 8]], seed: u32) -> (Vec<[u32; 8]>, u32) {
    let mut vs = vs.to_vec();
    let mut carry = seed;
    B::chain_delta_decode(&mut vs, &mut carry);
    (vs, carry)
}

fn lay_transpose<B: SimdBackend>(scratch: &[u32], n_v: usize) -> Vec<[u32; 8]> {
    let mut vs = vec![[0u32; 8]; n_v];
    B::layout_transpose(scratch, &mut vs);
    vs
}

fn widen<B: SimdBackend>(base: i64, rel: &[u32]) -> Vec<i64> {
    let mut out = vec![0i64; rel.len()];
    B::widen_rel_i64(base, rel, &mut out);
    out
}

fn range_mask<B: SimdBackend>(vals: &[i64], lo: i64, hi: i64) -> Vec<u64> {
    let mut out = vec![0u64; vals.len().div_ceil(64).max(1)];
    B::range_mask_i64(vals, lo, hi, &mut out);
    out
}

fn sum<B: SimdBackend>(vals: &[i64]) -> i128 {
    B::sum_i64(vals)
}

fn masked_sum<B: SimdBackend>(vals: &[i64], mask: &[u64]) -> (i128, u64) {
    B::masked_sum_i64(vals, mask)
}

fn min_max<B: SimdBackend>(vals: &[i64]) -> Option<(i64, i64)> {
    B::min_max_i64(vals)
}

fn masked_min_max<B: SimdBackend>(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
    B::masked_min_max_i64(vals, mask)
}

fn svb_quads<B: SimdBackend>(controls: &[u8], data: &[u8], n: usize) -> (Vec<u32>, usize) {
    let mut out = vec![0u32; n];
    let used = B::svb_decode_quads(controls, data, n, &mut out);
    (out, used)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unpack_u32_all_backends(
        width in 1u8..=32,
        start_bit in 0usize..16,
        raw in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let bytes = pack_be(&vals, width as usize, start_bit);
        check_backends!(unpack32(&bytes, start_bit, width, vals.len()));
        // The dispatched public path must agree with the reference too.
        let mut via_dispatch = vec![0u32; vals.len()];
        unpack::unpack_u32(&bytes, start_bit, width, &mut via_dispatch);
        prop_assert_eq!(via_dispatch,
                        unpack32::<ScalarBackend>(&bytes, start_bit, width, vals.len()));
    }

    #[test]
    fn unpack_u64_all_backends(
        width in 1u8..=64,
        start_bit in 0usize..8,
        raw in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let bytes = pack_be(&vals, width as usize, start_bit);
        check_backends!(unpack64(&bytes, start_bit, width, vals.len()));
        let mut via_dispatch = vec![0u64; vals.len()];
        unpack::unpack_u64(&bytes, start_bit, width, &mut via_dispatch);
        prop_assert_eq!(via_dispatch,
                        unpack64::<ScalarBackend>(&bytes, start_bit, width, vals.len()));
    }

    #[test]
    fn scan_all_backends(v in any::<[u32; 8]>(), seed in any::<u32>()) {
        check_backends!(scan_v32(v, seed));
        let (mut dv, mut dc) = (v, seed);
        scan::inclusive_scan_v32(&mut dv, &mut dc);
        prop_assert_eq!((dv, dc), scan_v32::<ScalarBackend>(v, seed));
    }

    #[test]
    fn chain_delta_decode_all_backends(
        n_v_idx in 0usize..4,
        deltas in proptest::collection::vec(any::<u32>(), 64..=64),
        seed in any::<u32>(),
    ) {
        let n_v = transpose::SUPPORTED_NV[n_v_idx];
        let mut vs = vec![[0u32; 8]; n_v];
        for e in 0..n_v * 8 {
            vs[e % n_v][e / n_v] = deltas[e];
        }
        check_backends!(chain_decode(&vs, seed));
        let (mut dv, mut dc) = (vs.clone(), seed);
        scan::chain_delta_decode(&mut dv, &mut dc);
        prop_assert_eq!((dv, dc), chain_decode::<ScalarBackend>(&vs, seed));
    }

    #[test]
    fn transpose_all_backends(
        n_v_idx in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 64..=64),
    ) {
        let n_v = transpose::SUPPORTED_NV[n_v_idx];
        let scratch = &raw[..n_v * 8];
        check_backends!(lay_transpose(scratch, n_v));
        let mut via_dispatch = vec![[0u32; 8]; n_v];
        transpose::layout_transpose(scratch, &mut via_dispatch);
        prop_assert_eq!(via_dispatch, lay_transpose::<ScalarBackend>(scratch, n_v));
    }

    #[test]
    fn widen_all_backends(
        base in any::<i64>(),
        rel in proptest::collection::vec(any::<u32>(), 0..100),
    ) {
        check_backends!(widen(base, &rel));
        let mut via_dispatch = vec![0i64; rel.len()];
        scan::widen_rel_i64(base, &rel, &mut via_dispatch);
        prop_assert_eq!(via_dispatch, widen::<ScalarBackend>(base, &rel));
    }

    #[test]
    fn range_mask_all_backends(
        vals in proptest::collection::vec(any::<i64>(), 0..300),
        lo in any::<i64>(),
        hi in any::<i64>(),
    ) {
        check_backends!(range_mask(&vals, lo, hi));
        let mut via_dispatch = filter::new_mask(vals.len().max(1));
        filter::range_mask_i64(&vals, lo, hi, &mut via_dispatch);
        prop_assert_eq!(via_dispatch, range_mask::<ScalarBackend>(&vals, lo, hi));
    }

    #[test]
    fn sum_all_backends(vals in proptest::collection::vec(any::<i64>(), 0..300)) {
        check_backends!(sum(&vals));
        prop_assert_eq!(agg::sum_i64(&vals), sum::<ScalarBackend>(&vals));
    }

    #[test]
    fn masked_sum_all_backends(
        vals in proptest::collection::vec(any::<i64>(), 0..300),
        mask_words in proptest::collection::vec(any::<u64>(), 5..=5),
    ) {
        check_backends!(masked_sum(&vals, &mask_words));
        prop_assert_eq!(agg::masked_sum_i64(&vals, &mask_words),
                        masked_sum::<ScalarBackend>(&vals, &mask_words));
    }

    #[test]
    fn min_max_all_backends(vals in proptest::collection::vec(any::<i64>(), 0..300)) {
        check_backends!(min_max(&vals));
        prop_assert_eq!(agg::min_max_i64(&vals), min_max::<ScalarBackend>(&vals));
    }

    #[test]
    fn masked_min_max_all_backends(
        vals in proptest::collection::vec(any::<i64>(), 0..300),
        mask_words in proptest::collection::vec(any::<u64>(), 5..=5),
    ) {
        check_backends!(masked_min_max(&vals, &mask_words));
        prop_assert_eq!(agg::masked_min_max_i64(&vals, &mask_words),
                        masked_min_max::<ScalarBackend>(&vals, &mask_words));
    }

    #[test]
    fn svb_decode_all_backends(
        raw in proptest::collection::vec(any::<u32>(), 0..500),
        shift in 0u32..32,
    ) {
        // Bias toward short byte lengths so all control classes appear.
        let vals: Vec<u32> = raw.iter().map(|v| v >> (v % (shift + 1))).collect();
        let (controls, data) = svb_encode(&vals);
        check_backends!(svb_quads(&controls, &data, vals.len()));
        let (got, used) = svb_quads::<ScalarBackend>(&controls, &data, vals.len());
        prop_assert_eq!(got, vals.clone());
        prop_assert_eq!(used, data.len());
        let mut via_dispatch = vec![0u32; vals.len()];
        let used2 = svb::decode_quads(&controls, &data, vals.len(), &mut via_dispatch);
        prop_assert_eq!(via_dispatch, vals);
        prop_assert_eq!(used2, data.len());
    }
}

#[test]
fn unpack_delta_chain_end_to_end() {
    // Pack deltas, unpack with the public API, transpose into the chain
    // layout, chain-decode, untranspose — must equal a scalar prefix sum.
    let width = 11u8;
    let deltas: Vec<u64> = (0..128u64).map(|i| (i * 37) % (1 << 11)).collect();
    let bytes = pack_be(&deltas, width as usize, 0);
    let mut unpacked = vec![0u32; deltas.len()];
    unpack::unpack_u32(&bytes, 0, width, &mut unpacked);

    let n_v = 8;
    let mut carry = 1000u32;
    let mut decoded = Vec::new();
    for round in unpacked.chunks(n_v * 8) {
        let mut vs = vec![[0u32; 8]; n_v];
        transpose::layout_transpose(round, &mut vs);
        scan::chain_delta_decode(&mut vs, &mut carry);
        let mut straight = vec![0u32; n_v * 8];
        transpose::layout_untranspose(&vs, &mut straight);
        decoded.extend_from_slice(&straight);
    }

    let mut acc = 1000u32;
    for (i, &d) in deltas.iter().enumerate() {
        acc = acc.wrapping_add(d as u32);
        assert_eq!(decoded[i], acc, "element {i}");
    }
}
