//! Differential property tests: the public (dispatched, possibly AVX2)
//! kernels must agree bit-for-bit with the scalar reference twins on
//! arbitrary inputs.

use etsqp_simd::{agg, filter, scalar, scan, transpose, unpack};
use proptest::prelude::*;

/// Packs `vals` of `width` bits into a big-endian stream at `start_bit`.
fn pack_be(vals: &[u64], width: usize, start_bit: usize) -> Vec<u8> {
    let total_bits = start_bit + vals.len() * width;
    let mut bytes = vec![0u8; total_bits.div_ceil(8)];
    let mut p = start_bit;
    for &v in vals {
        for b in 0..width {
            if (v >> (width - 1 - b)) & 1 != 0 {
                bytes[(p + b) / 8] |= 1 << (7 - (p + b) % 8);
            }
        }
        p += width;
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unpack_u32_matches_scalar(
        width in 1u8..=32,
        start_bit in 0usize..16,
        raw in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let bytes = pack_be(&vals, width as usize, start_bit);
        let mut got = vec![0u32; vals.len()];
        let mut want = vec![0u32; vals.len()];
        unpack::unpack_u32(&bytes, start_bit, width, &mut got);
        scalar::unpack_u32(&bytes, start_bit, width, &mut want);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn unpack_u64_matches_scalar(
        width in 1u8..=64,
        start_bit in 0usize..8,
        raw in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let bytes = pack_be(&vals, width as usize, start_bit);
        let mut got = vec![0u64; vals.len()];
        let mut want = vec![0u64; vals.len()];
        unpack::unpack_u64(&bytes, start_bit, width, &mut got);
        scalar::unpack_u64(&bytes, start_bit, width, &mut want);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn chain_delta_decode_matches_scalar(
        n_v_idx in 0usize..4,
        deltas in proptest::collection::vec(any::<u32>(), 64..=64),
        seed in any::<u32>(),
    ) {
        let n_v = transpose::SUPPORTED_NV[n_v_idx];
        let mut a = vec![[0u32; 8]; n_v];
        for e in 0..n_v * 8 {
            a[e % n_v][e / n_v] = deltas[e];
        }
        let mut b = a.clone();
        let mut ca = seed;
        let mut cb = seed;
        scan::chain_delta_decode(&mut a, &mut ca);
        scalar::chain_delta_decode(&mut b, &mut cb);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ca, cb);
    }

    #[test]
    fn scan_matches_scalar(v in any::<[u32; 8]>(), seed in any::<u32>()) {
        let mut a = v;
        let mut b = v;
        let mut ca = seed;
        let mut cb = seed;
        scan::inclusive_scan_v32(&mut a, &mut ca);
        scalar::inclusive_scan_v32(&mut b, &mut cb);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ca, cb);
    }

    #[test]
    fn transpose_matches_scalar(
        n_v_idx in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 64..=64),
    ) {
        let n_v = transpose::SUPPORTED_NV[n_v_idx];
        let scratch = &raw[..n_v * 8];
        let mut a = vec![[0u32; 8]; n_v];
        let mut b = vec![[0u32; 8]; n_v];
        transpose::layout_transpose(scratch, &mut a);
        scalar::layout_transpose(scratch, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_mask_matches_scalar(
        vals in proptest::collection::vec(any::<i64>(), 0..300),
        lo in any::<i64>(),
        hi in any::<i64>(),
    ) {
        let mut a = filter::new_mask(vals.len().max(1));
        let mut b = a.clone();
        filter::range_mask_i64(&vals, lo, hi, &mut a);
        scalar::range_mask_i64(&vals, lo, hi, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn masked_sum_matches_scalar(
        vals in proptest::collection::vec(any::<i64>(), 0..300),
        mask_words in proptest::collection::vec(any::<u64>(), 5..=5),
    ) {
        let got = agg::masked_sum_i64(&vals, &mask_words);
        let want = scalar::masked_sum_i64(&vals, &mask_words);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sum_matches_scalar(vals in proptest::collection::vec(any::<i64>(), 0..300)) {
        prop_assert_eq!(agg::sum_i64(&vals), scalar::sum_i64(&vals));
    }

    #[test]
    fn min_max_matches_scalar(vals in proptest::collection::vec(any::<i64>(), 0..300)) {
        prop_assert_eq!(agg::min_max_i64(&vals), scalar::min_max_i64(&vals));
    }

    #[test]
    fn widen_matches_scalar(
        base in any::<i64>(),
        rel in proptest::collection::vec(any::<u32>(), 0..100),
    ) {
        let mut a = vec![0i64; rel.len()];
        let mut b = vec![0i64; rel.len()];
        scan::widen_rel_i64(base, &rel, &mut a);
        scalar::widen_rel_i64(base, &rel, &mut b);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn unpack_delta_chain_end_to_end() {
    // Pack deltas, unpack with the public API, transpose into the chain
    // layout, chain-decode, untranspose — must equal a scalar prefix sum.
    let width = 11u8;
    let deltas: Vec<u64> = (0..128u64).map(|i| (i * 37) % (1 << 11)).collect();
    let bytes = pack_be(&deltas, width as usize, 0);
    let mut unpacked = vec![0u32; deltas.len()];
    unpack::unpack_u32(&bytes, 0, width, &mut unpacked);

    let n_v = 8;
    let mut carry = 1000u32;
    let mut decoded = Vec::new();
    for round in unpacked.chunks(n_v * 8) {
        let mut vs = vec![[0u32; 8]; n_v];
        transpose::layout_transpose(round, &mut vs);
        scan::chain_delta_decode(&mut vs, &mut carry);
        let mut straight = vec![0u32; n_v * 8];
        transpose::layout_untranspose(&vs, &mut straight);
        decoded.extend_from_slice(&straight);
    }

    let mut acc = 1000u32;
    for (i, &d) in deltas.iter().enumerate() {
        acc = acc.wrapping_add(d as u32);
        assert_eq!(decoded[i], acc, "element {i}");
    }
}
