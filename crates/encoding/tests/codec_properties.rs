//! Property tests: every codec must round-trip arbitrary inputs, and the
//! header-derived statistics used by the pruning rules (Propositions 4–5)
//! must actually bound the encoded quantities.

use etsqp_encoding::{chimp, delta_rle, elf, gorilla, rle, ts2diff, Encoding};
use proptest::prelude::*;

/// Sensor-like series: a random walk with bounded steps — the shape the
/// Delta–Repeat–Packing encoders are designed for.
fn sensor_series() -> impl Strategy<Value = Vec<i64>> {
    (
        any::<i64>(),
        proptest::collection::vec(-1000i64..1000, 0..500),
    )
        .prop_map(|(start, steps)| {
            let mut v = start % 1_000_000_007;
            let mut out = Vec::with_capacity(steps.len() + 1);
            out.push(v);
            for s in steps {
                v = v.wrapping_add(s);
                out.push(v);
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn int_codecs_roundtrip_sensor_series(values in sensor_series()) {
        for enc in [
            Encoding::Plain,
            Encoding::Ts2Diff,
            Encoding::Ts2DiffOrder2,
            Encoding::Rle,
            Encoding::DeltaRle,
            Encoding::Sprintz,
            Encoding::Rlbe,
            Encoding::Gorilla,
        ] {
            let bytes = enc.encode_i64(&values);
            let back = enc.decode_i64(&bytes).unwrap();
            prop_assert_eq!(&back, &values, "codec {}", enc.name());
        }
    }

    #[test]
    fn int_codecs_roundtrip_adversarial(values in proptest::collection::vec(any::<i64>(), 0..80)) {
        for enc in [
            Encoding::Plain,
            Encoding::Ts2Diff,
            Encoding::Ts2DiffOrder2,
            Encoding::Rle,
            Encoding::DeltaRle,
            Encoding::Sprintz,
            Encoding::Gorilla,
        ] {
            let bytes = enc.encode_i64(&values);
            let back = enc.decode_i64(&bytes).unwrap();
            prop_assert_eq!(&back, &values, "codec {}", enc.name());
        }
    }

    #[test]
    fn ts2diff_width_bounds_hold(values in sensor_series()) {
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let lo = page.delta_lower_bound();
        let hi = page.delta_upper_bound();
        for w in values.windows(2) {
            let d = w[1] - w[0];
            prop_assert!(d >= lo && d <= hi, "delta {d} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn delta_rle_bounds_hold(values in sensor_series()) {
        let bytes = delta_rle::encode(&values);
        let page = delta_rle::parse(&bytes).unwrap();
        for (d, r) in page.pairs() {
            prop_assert!(d >= page.delta_lower_bound());
            prop_assert!(d <= page.delta_upper_bound());
            prop_assert!(r <= page.run_upper_bound());
        }
    }

    #[test]
    fn rle_run_bound_holds(values in proptest::collection::vec(-5i64..5, 0..400)) {
        let bytes = rle::encode(&values);
        let page = rle::parse(&bytes).unwrap();
        for (run, _) in page.runs() {
            prop_assert!(run <= page.run_upper_bound());
        }
    }

    #[test]
    fn float_codecs_roundtrip(raw in proptest::collection::vec(any::<f64>(), 0..150)) {
        for (name, enc, dec) in [
            ("gorilla", gorilla::encode_f64 as fn(&[f64]) -> Vec<u8>, gorilla::decode_f64 as fn(&[u8]) -> etsqp_encoding::Result<Vec<f64>>),
            ("chimp", chimp::encode, chimp::decode),
            ("elf", elf::encode, elf::decode),
        ] {
            let bytes = enc(&raw);
            let back = dec(&bytes).unwrap();
            prop_assert_eq!(back.len(), raw.len(), "{}", name);
            for (a, b) in back.iter().zip(&raw) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}", name);
            }
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        // Corrupt input must yield Err, never panic or OOM.
        let _ = ts2diff::decode(&bytes);
        let _ = delta_rle::decode(&bytes);
        let _ = rle::decode(&bytes);
        let _ = gorilla::decode_i64(&bytes);
        let _ = chimp::decode(&bytes);
        let _ = elf::decode(&bytes);
    }
}
