//! Big-endian bit-stream writer and reader.
//!
//! IoT databases flush encoded pages MSB-first ("Big-Endian" in the
//! paper's Figure 1(b)); every codec in this crate serializes through
//! these two types, and the SIMD unpack kernels of `etsqp-simd` consume
//! the same byte order.

/// Append-only big-endian bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte (0..8; 0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            used: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Writes the low `n` bits of `v`, MSB first. `n` may be 0..=64.
    pub fn write_bits(&mut self, v: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut left = n;
        while left > 0 {
            if self.used == 0 {
                self.buf.push(0);
                // `used` counts bits consumed in the freshly pushed byte.
            }
            let free = 8 - self.used;
            let take = free.min(left);
            let chunk = if left >= 64 {
                v // take the whole value (left == n == 64, take <= 8 below)
            } else {
                v & ((1u64 << left) - 1)
            };
            let shifted = (chunk >> (left - take)) as u8 & ((1u16 << take) - 1) as u8;
            // The buffer is never empty here: `used == 0` pushed a byte
            // above, and `used > 0` implies a partially filled last byte.
            if let Some(last) = self.buf.last_mut() {
                *last |= shifted << (free - take);
            }
            self.used = (self.used + take) % 8;
            left -= take;
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Pads with zero bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.used = 0;
    }

    /// Finishes the stream, returning the bytes (zero-padded to a byte).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrowed view of the bytes written so far (last byte may be partial).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit position 0.
    pub fn new(src: &'a [u8]) -> Self {
        Self { src, pos: 0 }
    }

    /// Creates a reader at an arbitrary bit position.
    pub fn at(src: &'a [u8], bit_pos: usize) -> Self {
        Self { src, pos: bit_pos }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        (self.src.len() * 8).saturating_sub(self.pos)
    }

    /// Reads `n` bits (0..=64) MSB-first; `None` when the stream is short.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if self.remaining_bits() < n as usize {
            return None;
        }
        let v = etsqp_simd::scalar::read_bits_be(self.src, self.pos, n as usize);
        self.pos += n as usize;
        Some(v)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b == 1)
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Advances the cursor by `n` bits.
    pub fn skip_bits(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Minimum number of bits needed to represent `v` (0 needs 0 bits).
pub fn bits_needed_u64(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let items: Vec<(u64, u8)> = vec![
            (1, 1),
            (0b101, 3),
            (0x3FF, 10),
            (0, 7),
            (u64::MAX, 64),
            (0xDEADBEEF, 32),
            (5, 13),
        ];
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &items {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn write_bits_matches_manual_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11011, 5);
        assert_eq!(w.finish(), vec![0b1011_1011]);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bits(0xFF, 8);
        assert_eq!(w.finish(), vec![0b1100_0000, 0xFF]);
    }

    #[test]
    fn len_bits_tracks_position() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.len_bits(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.len_bits(), 16);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xAB));
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn reader_at_offset() {
        let bytes = [0b1010_1010, 0b0101_0101];
        let mut r = BitReader::at(&bytes, 4);
        assert_eq!(r.read_bits(8), Some(0b1010_0101));
    }

    #[test]
    fn bits_needed() {
        assert_eq!(bits_needed_u64(0), 0);
        assert_eq!(bits_needed_u64(1), 1);
        assert_eq!(bits_needed_u64(255), 8);
        assert_eq!(bits_needed_u64(256), 9);
        assert_eq!(bits_needed_u64(u64::MAX), 64);
    }

    #[test]
    fn write_64_bit_values_at_unaligned_positions() {
        let mut w = BitWriter::new();
        w.write_bits(1, 3);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(1));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }
}
