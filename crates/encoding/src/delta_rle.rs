//! Delta–Repeat encoding: run-length over first-order deltas — the input
//! format of the paper's operator-fusion section (§IV), where aggregates
//! are computed from `(Δ, run)` pairs without decoding single values.
//!
//! Page layout (big-endian):
//!
//! ```text
//! u32 count
//! i64 first
//! u32 n_pairs
//! i64 min_delta
//! u8  delta_width
//! u8  run_width
//! u8[] payload            // n_pairs × (delta − min, run), byte-aligned
//! ```
//!
//! Semantics: after `first`, each pair `(Δ, r)` contributes `r` values,
//! each incrementing the running value by `Δ`, so
//! `count = 1 + Σ r` (0 for the empty page).

use crate::bitio::{bits_needed_u64, BitReader, BitWriter};
use crate::{Error, Result};

/// Parsed Delta-RLE page metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRlePage<'a> {
    /// Total decoded element count.
    pub count: usize,
    /// First raw value.
    pub first: i64,
    /// Number of `(Δ, run)` pairs.
    pub n_pairs: usize,
    /// Minimum delta (`base`).
    pub min_delta: i64,
    /// Packing width of deltas.
    pub delta_width: u8,
    /// Packing width of run lengths.
    pub run_width: u8,
    /// Packed payload.
    pub payload: &'a [u8],
}

impl<'a> DeltaRlePage<'a> {
    /// `D_M` bound of Propositions 4–5.
    pub fn delta_upper_bound(&self) -> i64 {
        if self.delta_width >= 64 {
            return i64::MAX;
        }
        self.min_delta
            .saturating_add(((1u128 << self.delta_width) - 1).min(i64::MAX as u128) as i64)
    }

    /// `D_m` bound of Propositions 4–5.
    pub fn delta_lower_bound(&self) -> i64 {
        self.min_delta
    }

    /// `R_M` bound of Proposition 4.
    pub fn run_upper_bound(&self) -> u64 {
        if self.run_width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.run_width) - 1
        }
    }

    /// Iterates the `(Δ, run)` pairs.
    pub fn pairs(&self) -> DeltaRleIter<'a> {
        DeltaRleIter {
            reader: BitReader::new(self.payload),
            remaining: self.n_pairs,
            min_delta: self.min_delta,
            delta_width: self.delta_width,
            run_width: self.run_width,
        }
    }
}

/// Iterator over `(Δ, run)` pairs of a Delta-RLE page.
#[derive(Debug, Clone)]
pub struct DeltaRleIter<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    min_delta: i64,
    delta_width: u8,
    run_width: u8,
}

impl Iterator for DeltaRleIter<'_> {
    type Item = (i64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let stored = self.reader.read_bits(self.delta_width)?;
        let run = self.reader.read_bits(self.run_width)?;
        Some((self.min_delta.wrapping_add(stored as i64), run))
    }
}

/// Encodes `values` as a first value plus run-length-compressed deltas.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut pairs: Vec<(i64, u64)> = Vec::new();
    for w in values.windows(2) {
        let d = w[1].wrapping_sub(w[0]);
        match pairs.last_mut() {
            Some((delta, run)) if *delta == d => *run += 1,
            _ => pairs.push((d, 1)),
        }
    }
    let min_delta = pairs.iter().map(|&(d, _)| d).min().unwrap_or(0);
    let delta_width = pairs
        .iter()
        .map(|&(d, _)| bits_needed_u64(d.wrapping_sub(min_delta) as u64))
        .max()
        .unwrap_or(0);
    let run_width = pairs
        .iter()
        .map(|&(_, r)| bits_needed_u64(r))
        .max()
        .unwrap_or(0);
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    w.write_bits(values.first().copied().unwrap_or(0) as u64, 64);
    w.write_bits(pairs.len() as u64, 32);
    w.write_bits(min_delta as u64, 64);
    w.write_bits(delta_width as u64, 8);
    w.write_bits(run_width as u64, 8);
    for &(d, r) in &pairs {
        w.write_bits(d.wrapping_sub(min_delta) as u64, delta_width);
        w.write_bits(r, run_width);
    }
    w.finish()
}

/// Parses the page header.
pub fn parse(bytes: &[u8]) -> Result<DeltaRlePage<'_>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "count"))?
        as usize;
    let first = r
        .read_bits(64)
        .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "first"))?
        as i64;
    let n_pairs = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "pairs"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT || n_pairs > count.max(1) {
        return Err(Error::corrupt_at_bit(
            "delta_rle",
            r.bit_pos(),
            "counts exceed page cap",
        ));
    }
    let min_delta =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "base"))? as i64;
    let delta_width =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "dw"))? as u8;
    let run_width =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("delta_rle", r.bit_pos(), "rw"))? as u8;
    if delta_width > 64 || run_width > 64 {
        return Err(Error::BadWidth(delta_width.max(run_width)));
    }
    let payload = &bytes[r.bit_pos() / 8..];
    let need_bits = n_pairs * (delta_width as usize + run_width as usize);
    if payload.len() * 8 < need_bits {
        return Err(Error::corrupt_at_bit(
            "delta_rle",
            r.bit_pos(),
            "payload truncated",
        ));
    }
    Ok(DeltaRlePage {
        count,
        first,
        n_pairs,
        min_delta,
        delta_width,
        run_width,
        payload,
    })
}

/// Serial reference decoder.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let page = parse(bytes)?;
    if page.count == 0 {
        return Ok(Vec::new());
    }
    // Cap the prealloc: runs expand, so `count` is not payload-bounded.
    let mut out = Vec::with_capacity(page.count.min(1 << 16));
    out.push(page.first);
    let mut cur = page.first;
    for (delta, run) in page.pairs() {
        if run as usize > page.count - out.len() {
            return Err(Error::Corrupt {
                codec: "delta_rle",
                offset: bytes.len(),
                reason: "run overflows declared count",
            });
        }
        for _ in 0..run {
            cur = cur.wrapping_add(delta);
            out.push(cur);
        }
    }
    if out.len() != page.count {
        return Err(Error::BadCount {
            declared: page.count as u64,
            available: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp_compresses_to_one_pair() {
        let vals: Vec<i64> = (0..1000).map(|i| 100 + i * 5).collect();
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.n_pairs, 1);
        assert!(bytes.len() < 40);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn roundtrip_mixed_slopes() {
        let mut vals = Vec::new();
        let mut v = 0i64;
        for (slope, len) in [(3i64, 50usize), (-2, 30), (0, 100), (7, 1)] {
            for _ in 0..len {
                v += slope;
                vals.push(v);
            }
        }
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.n_pairs, 4);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn empty_single_double() {
        for vals in [vec![], vec![5], vec![5, 9]] {
            assert_eq!(decode(&encode(&vals)).unwrap(), vals, "{vals:?}");
        }
    }

    #[test]
    fn bounds_from_widths() {
        let vals = vec![0i64, 2, 4, 6, 13, 20]; // deltas 2,2,2,7,7 → pairs (2,3),(7,2)
        let page_bytes = encode(&vals);
        let page = parse(&page_bytes).unwrap();
        assert_eq!(page.n_pairs, 2);
        assert_eq!(page.delta_lower_bound(), 2);
        // stored max = 5 → width 3 → D_M = 2 + 7 = 9.
        assert_eq!(page.delta_upper_bound(), 9);
        assert_eq!(page.run_upper_bound(), 3); // max run 3 → width 2
    }

    #[test]
    fn pairs_iterator_matches_decode() {
        let vals: Vec<i64> = vec![10, 13, 16, 19, 18, 17, 17, 17];
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        let mut rebuilt = vec![page.first];
        let mut cur = page.first;
        for (d, r) in page.pairs() {
            for _ in 0..r {
                cur += d;
                rebuilt.push(cur);
            }
        }
        assert_eq!(rebuilt, vals);
    }
}
