//! Chimp float compression (Liakos et al., VLDB'22) — the `XOR / Pattern`
//! row of Table I. Improves Gorilla's XOR scheme with a rounded 3-bit
//! leading-zero alphabet and a dedicated short code for XORs with many
//! trailing zeros.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Rounded leading-zero alphabet (Chimp paper).
const LEADING_ROUND: [u32; 65] = {
    let mut t = [0u32; 65];
    let mut i = 0;
    while i < 65 {
        t[i] = match i {
            0..=7 => 0,
            8..=11 => 8,
            12..=15 => 12,
            16..=17 => 16,
            18..=19 => 18,
            20..=21 => 20,
            22..=23 => 22,
            _ => 24,
        };
        i += 1;
    }
    t
};

/// 3-bit code for each rounded leading count.
fn leading_code(rounded: u32) -> u64 {
    match rounded {
        0 => 0,
        8 => 1,
        12 => 2,
        16 => 3,
        18 => 4,
        20 => 5,
        22 => 6,
        _ => 7,
    }
}

/// Inverse of [`leading_code`].
fn leading_from_code(code: u64) -> u32 {
    [0, 8, 12, 16, 18, 20, 22, 24][code as usize]
}

/// Encodes floats with Chimp.
///
/// Per value, a 2-bit flag selects: `00` identical; `01` many trailing
/// zeros (3-bit leading code + 6-bit significant-count + center bits);
/// `10` same leading as previous (64−leading bits); `11` new leading
/// (3-bit code + 64−leading bits).
pub fn encode(values: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    if values.is_empty() {
        return w.finish();
    }
    let mut prev = values[0].to_bits();
    w.write_bits(prev, 64);
    let mut prev_lead = u32::MAX;
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bits(0b00, 2);
            prev_lead = u32::MAX; // Chimp resets the stored leading on zero XOR
            continue;
        }
        let trail = xor.trailing_zeros();
        let lead = LEADING_ROUND[xor.leading_zeros() as usize];
        if trail > 6 {
            w.write_bits(0b01, 2);
            let sig = 64 - lead - trail;
            w.write_bits(leading_code(lead), 3);
            w.write_bits(sig as u64, 6);
            w.write_bits(xor >> trail, sig as u8);
            prev_lead = u32::MAX;
        } else if lead == prev_lead {
            w.write_bits(0b10, 2);
            w.write_bits(xor, (64 - lead) as u8);
        } else {
            w.write_bits(0b11, 2);
            w.write_bits(leading_code(lead), 3);
            w.write_bits(xor, (64 - lead) as u8);
            prev_lead = lead;
        }
    }
    w.finish()
}

/// Decodes a stream produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = BitReader::new(bytes);
    let count =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "count"))? as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "chimp",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let mut prev = r
        .read_bits(64)
        .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "first"))?;
    out.push(f64::from_bits(prev));
    let mut stored_lead = 0u32;
    for _ in 1..count {
        let flag = r
            .read_bits(2)
            .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "flag"))?;
        let xor = match flag {
            0b00 => 0,
            0b01 => {
                let lead = leading_from_code(
                    r.read_bits(3)
                        .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "lead"))?,
                );
                let sig = r
                    .read_bits(6)
                    .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "sig"))?
                    as u32;
                if lead + sig > 64 {
                    return Err(Error::corrupt_at_bit(
                        "chimp",
                        r.bit_pos(),
                        "lead+sig exceeds 64",
                    ));
                }
                // A real encoder emits sig >= 1 (flag 01 implies xor != 0);
                // sig == 0 would make `trail` 64 and the shift below UB.
                if sig == 0 {
                    return Err(Error::corrupt_at_bit(
                        "chimp",
                        r.bit_pos(),
                        "zero significant bits",
                    ));
                }
                let trail = 64 - lead - sig;
                r.read_bits(sig as u8)
                    .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "bits"))?
                    << trail
            }
            0b10 => r
                .read_bits((64 - stored_lead) as u8)
                .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "bits"))?,
            _ => {
                stored_lead = leading_from_code(
                    r.read_bits(3)
                        .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "lead"))?,
                );
                r.read_bits((64 - stored_lead) as u8)
                    .ok_or_else(|| Error::corrupt_at_bit("chimp", r.bit_pos(), "bits"))?
            }
        };
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn roundtrip_sensor_like() {
        let vals: Vec<f64> = (0..1000).map(|i| 101.3 + (i as f64 * 0.05).cos()).collect();
        assert_bits_eq(&decode(&encode(&vals)).unwrap(), &vals);
    }

    #[test]
    fn roundtrip_repeats() {
        let vals = vec![7.25; 64];
        let bytes = encode(&vals);
        assert_bits_eq(&decode(&bytes).unwrap(), &vals);
        // 64 repeated values: header + ~2 bits each.
        assert!(bytes.len() < 35);
    }

    #[test]
    fn roundtrip_specials() {
        let vals = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            1e-300,
            -1e300,
        ];
        assert_bits_eq(&decode(&encode(&vals)).unwrap(), &vals);
    }

    #[test]
    fn roundtrip_nan_payloads() {
        let vals = vec![f64::NAN, f64::from_bits(0x7FF8_0000_0000_0001), 1.0];
        let back = decode(&encode(&vals)).unwrap();
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_single() {
        assert!(decode(&encode(&[])).unwrap().is_empty());
        assert_bits_eq(&decode(&encode(&[9.5])).unwrap(), &[9.5]);
    }

    #[test]
    fn beats_plain_on_smooth_data() {
        let vals: Vec<f64> = (0..4096).map(|i| 55.0 + (i % 16) as f64 * 0.25).collect();
        let bytes = encode(&vals);
        assert!(bytes.len() < vals.len() * 8, "chimp should compress");
    }
}
