//! Sprintz-style encoding: first-order delta → ZigZag → bit-packing
//! (paper Table I, Sprintz row).
//!
//! Page layout (big-endian):
//!
//! ```text
//! u32 count
//! i64 first
//! u8  width
//! u8[] payload            // (count − 1) packed ZigZag deltas
//! ```

use crate::bitio::{bits_needed_u64, BitReader, BitWriter};
use crate::zigzag::{decode_zigzag, encode_zigzag};
use crate::{Error, Result};

/// Parsed Sprintz page metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprintzPage<'a> {
    /// Total decoded element count.
    pub count: usize,
    /// First raw value.
    pub first: i64,
    /// ZigZag-delta packing width.
    pub width: u8,
    /// Packed payload.
    pub payload: &'a [u8],
}

impl SprintzPage<'_> {
    /// Magnitude bound on any delta derived from the ZigZag width:
    /// `|Δ| ≤ 2^(width−1)` (ZigZag of width ω covers [−2^(ω−1), 2^(ω−1)−… ]).
    pub fn delta_magnitude_bound(&self) -> i64 {
        if self.width == 0 {
            0
        } else if self.width >= 64 {
            i64::MAX
        } else {
            1i64 << (self.width - 1)
        }
    }
}

/// Encodes `values` with delta + ZigZag + bit-packing.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let deltas: Vec<u64> = values
        .windows(2)
        .map(|w| encode_zigzag(w[1].wrapping_sub(w[0])))
        .collect();
    let width = deltas
        .iter()
        .map(|&z| bits_needed_u64(z))
        .max()
        .unwrap_or(0);
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    w.write_bits(values.first().copied().unwrap_or(0) as u64, 64);
    w.write_bits(width as u64, 8);
    for &z in &deltas {
        w.write_bits(z, width);
    }
    w.finish()
}

/// Parses the page header.
pub fn parse(bytes: &[u8]) -> Result<SprintzPage<'_>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("sprintz", r.bit_pos(), "count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "sprintz",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    let first =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("sprintz", r.bit_pos(), "first"))? as i64;
    let width =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("sprintz", r.bit_pos(), "width"))? as u8;
    if width > 64 {
        return Err(Error::BadWidth(width));
    }
    let payload = &bytes[r.bit_pos() / 8..];
    if payload.len() * 8 < count.saturating_sub(1) * width as usize {
        return Err(Error::corrupt_at_bit(
            "sprintz",
            r.bit_pos(),
            "payload truncated",
        ));
    }
    Ok(SprintzPage {
        count,
        first,
        width,
        payload,
    })
}

/// Serial reference decoder.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let page = parse(bytes)?;
    decode_from_parts(&page)
}

/// Serial decode of an already-parsed page.
pub fn decode_from_parts(page: &SprintzPage<'_>) -> Result<Vec<i64>> {
    if page.count == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(page.count);
    out.push(page.first);
    let mut cur = page.first;
    let mut r = BitReader::new(page.payload);
    for _ in 1..page.count {
        let z = r
            .read_bits(page.width)
            .ok_or_else(|| Error::corrupt_at_bit("sprintz", r.bit_pos(), "payload"))?;
        cur = cur.wrapping_add(decode_zigzag(z));
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_oscillating_series() {
        // ZigZag shines on sign-alternating deltas.
        let vals: Vec<i64> = (0..500)
            .map(|i| 1000 + if i % 2 == 0 { 3 } else { -3 })
            .collect();
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        assert!(page.width <= 4); // deltas ±6 → zigzag ≤ 12 → 4 bits
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn roundtrip_extremes() {
        let vals = vec![0i64, i64::MAX, i64::MIN, -1, 1];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[-9])).unwrap(), vec![-9]);
    }

    #[test]
    fn magnitude_bound() {
        let vals = vec![0i64, 100, 50]; // deltas 100, -50 → zigzag 200, 99 → width 8
        let page_bytes = encode(&vals);
        let page = parse(&page_bytes).unwrap();
        assert_eq!(page.width, 8);
        assert_eq!(page.delta_magnitude_bound(), 128);
    }
}
