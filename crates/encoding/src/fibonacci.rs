//! Fibonacci (Zeckendorf) variable-width coding — the Packing stage of the
//! RLBE encoder (Table I) and the paper's variable-width unpacking example
//! (Figure 7): every codeword ends with the bit pair `11`, which is how
//! the vectorized separator scan `(V >> 1) & V` finds element boundaries.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Fibonacci numbers F(2)=1, F(3)=2, … up to the largest below 2^63.
fn fib_table() -> &'static [u64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v = vec![1u64, 2];
        loop {
            let n = v[v.len() - 1].saturating_add(v[v.len() - 2]);
            // lint:allow(no-panic-paths) -- static table construction:
            // `v` starts with two elements and only grows, so last()
            // is always Some; no untrusted bytes are involved.
            if n < *v.last().unwrap() || n > (1u64 << 63) {
                break;
            }
            v.push(n);
        }
        v
    })
}

/// Appends the Fibonacci code of `v` (must be ≥ 1) to the writer.
///
/// The Zeckendorf representation is emitted lowest Fibonacci term first,
/// followed by a terminating `1` bit, so every codeword ends in `11`.
///
/// # Panics
/// If `v == 0` (encode `v + 1` to cover zero).
pub fn write_fib(w: &mut BitWriter, v: u64) {
    assert!(v >= 1, "Fibonacci coding requires v >= 1");
    let table = fib_table();
    // Find the Zeckendorf decomposition (greedy from the largest term).
    let mut bits = Vec::with_capacity(32);
    let mut rest = v;
    let mut hi = match table.binary_search(&v) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    bits.resize(hi + 1, false);
    loop {
        bits[hi] = true;
        rest -= table[hi];
        if rest == 0 {
            break;
        }
        hi = match table[..hi].binary_search(&rest) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
    }
    for b in &bits {
        w.write_bit(*b);
    }
    w.write_bit(true); // terminator: forms the `11` pair with the top term
}

/// Reads one Fibonacci codeword; `None` on stream end / missing terminator.
pub fn read_fib(r: &mut BitReader<'_>) -> Option<u64> {
    let table = fib_table();
    let mut v = 0u64;
    let mut prev = false;
    let mut idx = 0usize;
    loop {
        let bit = r.read_bit()?;
        if bit && prev {
            return Some(v);
        }
        if bit {
            v = v.checked_add(*table.get(idx)?)?;
        }
        prev = bit;
        idx += 1;
    }
}

/// Encodes a slice of u64 (≥ 1 each) as concatenated Fibonacci codes.
pub fn encode_all(values: &[u64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    for &v in values {
        write_fib(&mut w, v);
    }
    w.finish()
}

/// Decodes a stream produced by [`encode_all`].
pub fn decode_all(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("fibonacci", r.bit_pos(), "fib count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "fibonacci",
            r.bit_pos(),
            "fib count exceeds page cap",
        ));
    }
    // Each codeword is at least two bits ("11"), so the count is bounded
    // by the remaining bit budget — checked before allocating.
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(
            read_fib(&mut r)
                .ok_or_else(|| Error::corrupt_at_bit("fibonacci", r.bit_pos(), "fib codeword"))?,
        );
    }
    Ok(out)
}

/// Scans a bit window for `11` separator positions the way the vectorized
/// decoder of Figure 7 does: returns `(word >> 1) & word`, whose set bits
/// mark codeword terminators (when scanning MSB-first halves).
#[inline]
pub fn separator_scan(word: u64) -> u64 {
    (word >> 1) & word
}

/// Word-at-a-time Fibonacci decoder — the paper's variable-width
/// unpacking technique (Figure 7): load 64 stream bits, find the
/// terminating `11` pair with one `(V << 1) & V` separator scan, and
/// extract the whole codeword's terms with bit arithmetic instead of
/// walking bits one by one.
#[derive(Debug, Clone)]
pub struct FibReader<'a> {
    src: &'a [u8],
    /// Current bit position in the stream.
    pub pos: usize,
}

impl<'a> FibReader<'a> {
    /// Creates a reader at `bit_pos`.
    pub fn at(src: &'a [u8], bit_pos: usize) -> Self {
        FibReader { src, pos: bit_pos }
    }

    /// Loads up to 64 stream bits starting at `p` (MSB-first), zero-padded
    /// past the end; returns `(window, valid_bits)`.
    fn window(&self, p: usize) -> (u64, usize) {
        let total = self.src.len() * 8;
        if p >= total {
            return (0, 0);
        }
        let avail = (total - p).min(64);
        let w = etsqp_simd::scalar::read_bits_be(self.src, p, avail);
        (w << (64 - avail), avail)
    }

    /// Decodes the next codeword; `None` on stream end or malformed code.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Option<u64> {
        let table = fib_table();
        let (w, valid) = self.window(self.pos);
        if valid < 2 {
            return None;
        }
        // Separator scan: bit (63−k) of (w & w<<1) ⇔ stream bits k, k+1
        // are both set. The first pair at or after the codeword start is
        // its terminator (Zeckendorf bodies have no adjacent ones).
        let pairs = w & (w << 1);
        let lead = pairs.leading_zeros() as usize;
        if pairs != 0 && lead + 1 < valid {
            let term = lead; // stream offset of the terminator's first bit
                             // Codeword body: stream bits 0..=term (the top term is at
                             // `term` itself), terminator bit at term+1.
            let len = term + 1;
            let body = if len == 64 { w } else { w >> (64 - len) };
            // body bit j (LSB-indexed) ⇔ stream bit (len−1−j) ⇔ Fibonacci
            // term index (len−1−j).
            let mut v: u64 = 0;
            let mut bits = body;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                v = v.checked_add(*table.get(len - 1 - j)?)?;
                bits &= bits - 1;
            }
            self.pos += len + 1;
            Some(v)
        } else {
            // No terminator inside the window: a >62-bit codeword (rare:
            // values beyond F(64)) — fall back to the bit-serial reader.
            let mut r = BitReader::at(self.src, self.pos);
            let v = read_fib(&mut r)?;
            self.pos = r.bit_pos();
            Some(v)
        }
    }
}

/// Fast counterpart of [`decode_all`] using the Figure 7 separator scan.
pub fn decode_all_fast(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("fibonacci", r.bit_pos(), "fib count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "fibonacci",
            r.bit_pos(),
            "fib count exceeds page cap",
        ));
    }
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut reader = FibReader::at(bytes, 32);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(
            reader
                .next()
                .ok_or_else(|| Error::corrupt_at_bit("fibonacci", reader.pos, "fib codeword"))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codewords() {
        // 1 → "11", 2 → "011", 3 → "0011", 4 → "1011".
        let mut w = BitWriter::new();
        write_fib(&mut w, 1);
        let bytes = w.finish();
        assert_eq!(bytes[0] >> 6, 0b11);
        let mut w = BitWriter::new();
        write_fib(&mut w, 4);
        let bytes = w.finish();
        assert_eq!(bytes[0] >> 4, 0b1011);
    }

    #[test]
    fn roundtrip_range() {
        let vals: Vec<u64> = (1..=500).collect();
        assert_eq!(decode_all(&encode_all(&vals)).unwrap(), vals);
    }

    #[test]
    fn roundtrip_large_values() {
        let vals = vec![1, u32::MAX as u64, 1 << 40, (1 << 62) + 12345, 2, 3];
        assert_eq!(decode_all(&encode_all(&vals)).unwrap(), vals);
    }

    #[test]
    fn separator_scan_finds_terminators() {
        // Bits "11" adjacent anywhere → nonzero scan.
        assert_ne!(separator_scan(0b11), 0);
        assert_eq!(separator_scan(0b101010), 0);
    }

    #[test]
    #[should_panic]
    fn zero_is_rejected() {
        let mut w = BitWriter::new();
        write_fib(&mut w, 0);
    }

    #[test]
    fn truncated_stream_is_error() {
        let bytes = encode_all(&[100, 200, 300]);
        assert!(decode_all(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn fast_decoder_matches_serial_on_ranges() {
        let vals: Vec<u64> = (1..=2000).collect();
        let bytes = encode_all(&vals);
        assert_eq!(
            decode_all_fast(&bytes).unwrap(),
            decode_all(&bytes).unwrap()
        );
    }

    #[test]
    fn fast_decoder_handles_large_values_and_mixes() {
        let vals = vec![
            1,
            2,
            3,
            u32::MAX as u64,
            1 << 40,
            (1 << 62) + 12345,
            7,
            (1 << 61) | 12345,
            1,
        ];
        let bytes = encode_all(&vals);
        assert_eq!(decode_all_fast(&bytes).unwrap(), vals);
    }

    #[test]
    fn fast_decoder_consecutive_ones_codewords() {
        // Value 1 encodes as "11": back-to-back terminators are the
        // adversarial case for the separator scan (spurious pairs).
        let vals = vec![1u64; 500];
        let bytes = encode_all(&vals);
        assert_eq!(decode_all_fast(&bytes).unwrap(), vals);
    }

    #[test]
    fn fast_decoder_rejects_truncation() {
        let bytes = encode_all(&[100, 200, 300]);
        assert!(decode_all_fast(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn fib_reader_positions_advance_correctly() {
        let vals = vec![5u64, 1, 1 << 30, 2];
        let bytes = encode_all(&vals);
        let mut fast = FibReader::at(&bytes, 32);
        let mut slow = BitReader::at(&bytes, 32);
        for &want in &vals {
            assert_eq!(fast.next(), Some(want));
            assert_eq!(read_fib(&mut slow), Some(want));
            assert_eq!(fast.pos, slow.bit_pos(), "positions diverge");
        }
    }
}
