//! Run-length encoding over raw values (the "Repeat" encoder of Table I),
//! with min-base subtraction and bit-packed runs and values.
//!
//! Page layout (big-endian):
//!
//! ```text
//! u32 count
//! u32 n_runs
//! i64 min_value
//! u8  value_width
//! u8  run_width
//! u8[] payload            // n_runs × (run, value − min), byte-aligned
//! ```

use crate::bitio::{bits_needed_u64, BitReader, BitWriter};
use crate::{Error, Result};

/// Parsed RLE page metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlePage<'a> {
    /// Total decoded element count.
    pub count: usize,
    /// Number of (run, value) pairs.
    pub n_runs: usize,
    /// Minimum value (subtracted before packing).
    pub min_value: i64,
    /// Packing width of values.
    pub value_width: u8,
    /// Packing width of run lengths.
    pub run_width: u8,
    /// Packed payload.
    pub payload: &'a [u8],
}

impl<'a> RlePage<'a> {
    /// Upper bound on any run length, from the packing width — the `R_M`
    /// statistic of Proposition 4.
    pub fn run_upper_bound(&self) -> u64 {
        if self.run_width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.run_width) - 1
        }
    }

    /// Iterates `(run, value)` pairs.
    pub fn runs(&self) -> RleIter<'a> {
        RleIter {
            reader: BitReader::new(self.payload),
            remaining: self.n_runs,
            min_value: self.min_value,
            value_width: self.value_width,
            run_width: self.run_width,
        }
    }
}

/// Iterator over the `(run, value)` pairs of an RLE page.
#[derive(Debug, Clone)]
pub struct RleIter<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    min_value: i64,
    value_width: u8,
    run_width: u8,
}

impl Iterator for RleIter<'_> {
    type Item = (u64, i64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let run = self.reader.read_bits(self.run_width)?;
        let stored = self.reader.read_bits(self.value_width)?;
        Some((run, self.min_value.wrapping_add(stored as i64)))
    }
}

/// Encodes `values` as run-length pairs.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut runs: Vec<(u64, i64)> = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((run, last)) if *last == v => *run += 1,
            _ => runs.push((1, v)),
        }
    }
    let min_value = runs.iter().map(|&(_, v)| v).min().unwrap_or(0);
    let value_width = runs
        .iter()
        .map(|&(_, v)| bits_needed_u64(v.wrapping_sub(min_value) as u64))
        .max()
        .unwrap_or(0);
    let run_width = runs
        .iter()
        .map(|&(r, _)| bits_needed_u64(r))
        .max()
        .unwrap_or(0);
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    w.write_bits(runs.len() as u64, 32);
    w.write_bits(min_value as u64, 64);
    w.write_bits(value_width as u64, 8);
    w.write_bits(run_width as u64, 8);
    for &(run, v) in &runs {
        w.write_bits(run, run_width);
        w.write_bits(v.wrapping_sub(min_value) as u64, value_width);
    }
    w.finish()
}

/// Parses the page header.
pub fn parse(bytes: &[u8]) -> Result<RlePage<'_>> {
    let mut r = BitReader::new(bytes);
    let count =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("rle", r.bit_pos(), "count"))? as usize;
    let n_runs =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("rle", r.bit_pos(), "n_runs"))? as usize;
    if count > crate::MAX_PAGE_COUNT || n_runs > count.max(1) {
        return Err(Error::corrupt_at_bit(
            "rle",
            r.bit_pos(),
            "counts exceed page cap",
        ));
    }
    let min_value =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("rle", r.bit_pos(), "min"))? as i64;
    let value_width =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("rle", r.bit_pos(), "vw"))? as u8;
    let run_width = r
        .read_bits(8)
        .ok_or_else(|| Error::corrupt_at_bit("rle", r.bit_pos(), "rw"))? as u8;
    if value_width > 64 || run_width > 64 {
        return Err(Error::BadWidth(value_width.max(run_width)));
    }
    let payload = &bytes[r.bit_pos() / 8..];
    let need_bits = n_runs * (value_width as usize + run_width as usize);
    if payload.len() * 8 < need_bits {
        return Err(Error::corrupt_at_bit(
            "rle",
            r.bit_pos(),
            "payload truncated",
        ));
    }
    Ok(RlePage {
        count,
        n_runs,
        min_value,
        value_width,
        run_width,
        payload,
    })
}

/// Serial reference decoder.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let page = parse(bytes)?;
    // Cap the prealloc: runs expand, so `count` is not payload-bounded.
    let mut out = Vec::with_capacity(page.count.min(1 << 16));
    for (run, v) in page.runs() {
        if run as usize > page.count - out.len() {
            return Err(Error::Corrupt {
                codec: "rle",
                offset: bytes.len(),
                reason: "run overflows declared count",
            });
        }
        for _ in 0..run {
            out.push(v);
        }
    }
    if out.len() != page.count {
        return Err(Error::BadCount {
            declared: page.count as u64,
            available: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_long_runs() {
        let mut vals = vec![5i64; 100];
        vals.extend(vec![7i64; 50]);
        vals.extend(vec![-3i64; 200]);
        let bytes = encode(&vals);
        assert_eq!(decode(&bytes).unwrap(), vals);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.n_runs, 3);
        assert!(bytes.len() < 40);
    }

    #[test]
    fn roundtrip_no_repeats() {
        let vals: Vec<i64> = (0..100).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[9])).unwrap(), vec![9]);
    }

    #[test]
    fn run_upper_bound_from_width() {
        let vals = vec![1i64; 200]; // single run of 200 → width 8 → bound 255
        let page_bytes = encode(&vals);
        let page = parse(&page_bytes).unwrap();
        assert_eq!(page.run_upper_bound(), 255);
        assert!(page.run_upper_bound() >= 200);
    }

    #[test]
    fn truncation_detected() {
        let vals = vec![1i64, 1, 2, 2, 3, 3];
        let bytes = encode(&vals);
        assert!(parse(&bytes[..10]).is_err());
    }
}
