//! Elf float compression (Li et al., VLDB'23) — erasing-based lossless
//! compression, the `XOR / Pattern (erase)` row of Table I.
//!
//! Elf zeroes low mantissa bits that are *recoverable from the value's
//! decimal precision*, then XOR-compresses the erased doubles (which now
//! have long trailing-zero runs). This implementation verifies every
//! erasure at encode time — a value is only erased when rounding the
//! erased double back to its decimal precision provably restores the
//! original bits — so the codec is unconditionally lossless.
//!
//! Per value: a flag bit (`1` = erased, followed by 5 bits of decimal
//! significant-digit count α) and then a Gorilla-style XOR code of the
//! (possibly erased) double against the previous stored double.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Number of significant decimal digits in the shortest round-trip
/// representation of `v` (1..=17 for finite doubles).
fn sig_digits(v: f64) -> u32 {
    let s = format!("{v:e}");
    // Format is like "2.047e1" or "5e-3" — count mantissa digits.
    let mantissa = s.split('e').next().unwrap_or("");
    let digits = mantissa.chars().filter(|c| c.is_ascii_digit()).count() as u32;
    digits.clamp(1, 17)
}

/// Rounds `x` to `alpha` significant decimal digits and reparses.
fn round_sig(x: f64, alpha: u32) -> f64 {
    format!("{x:.*e}", (alpha - 1) as usize)
        .parse()
        .unwrap_or(x)
}

/// Finds the largest erasure (in bits) of `v`'s mantissa that is provably
/// recoverable from `alpha` significant digits; returns the erased bits
/// pattern, or `None` when no bits can be erased.
fn erase(v: f64, alpha: u32) -> Option<u64> {
    if !v.is_finite() || v == 0.0 {
        return None;
    }
    let bits = v.to_bits();
    let mut best: Option<u64> = None;
    // Binary-search-free sweep: erasable bit counts are small (≤ 52).
    for t in (1..=52u32).rev() {
        let cand = bits & !((1u64 << t) - 1);
        if cand == bits {
            continue; // nothing actually erased
        }
        if round_sig(f64::from_bits(cand), alpha).to_bits() == bits {
            best = Some(cand);
            break;
        }
    }
    best
}

/// Encodes floats with verified Elf erasure + XOR.
pub fn encode(values: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    if values.is_empty() {
        return w.finish();
    }
    let mut prev_stored = 0u64;
    for (i, &v) in values.iter().enumerate() {
        let alpha = if v.is_finite() { sig_digits(v) } else { 17 };
        let (stored, erased) = match erase(v, alpha) {
            Some(e) => (e, true),
            None => (v.to_bits(), false),
        };
        if erased {
            w.write_bit(true);
            w.write_bits(alpha as u64, 5);
        } else {
            w.write_bit(false);
        }
        if i == 0 {
            w.write_bits(stored, 64);
        } else {
            write_xor(&mut w, prev_stored ^ stored);
        }
        prev_stored = stored;
    }
    w.finish()
}

/// Decodes a stream produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = BitReader::new(bytes);
    let count =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("elf", r.bit_pos(), "count"))? as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "elf",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    let mut prev_stored = 0u64;
    for i in 0..count {
        let erased = r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("elf", r.bit_pos(), "flag"))?;
        let alpha = if erased {
            r.read_bits(5)
                .ok_or_else(|| Error::corrupt_at_bit("elf", r.bit_pos(), "alpha"))?
                as u32
        } else {
            0
        };
        let stored = if i == 0 {
            r.read_bits(64)
                .ok_or_else(|| Error::corrupt_at_bit("elf", r.bit_pos(), "first"))?
        } else {
            prev_stored
                ^ read_xor(&mut r)
                    .ok_or_else(|| Error::corrupt_at_bit("elf", r.bit_pos(), "xor"))?
        };
        prev_stored = stored;
        let v = f64::from_bits(stored);
        out.push(if erased {
            round_sig(v, alpha.max(1))
        } else {
            v
        });
    }
    Ok(out)
}

/// Writes a 64-bit XOR with a compact prefix code: `0` for zero, else
/// `1` + 6-bit leading-zero count + 6-bit (significant−1) + center bits.
fn write_xor(w: &mut BitWriter, xor: u64) {
    if xor == 0 {
        w.write_bit(false);
        return;
    }
    w.write_bit(true);
    let lead = xor.leading_zeros();
    let trail = xor.trailing_zeros();
    let sig = 64 - lead - trail;
    w.write_bits(lead as u64, 6);
    w.write_bits((sig - 1) as u64, 6);
    w.write_bits(xor >> trail, sig as u8);
}

/// Reads a code written by [`write_xor`].
fn read_xor(r: &mut BitReader<'_>) -> Option<u64> {
    if !r.read_bit()? {
        return Some(0);
    }
    let lead = r.read_bits(6)? as u32;
    let sig = r.read_bits(6)? as u32 + 1;
    if lead + sig > 64 {
        return None;
    }
    let trail = 64 - lead - sig;
    Some(r.read_bits(sig as u8)? << trail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn roundtrip_low_precision_decimals() {
        // Two-decimal sensor readings: Elf's sweet spot.
        let vals: Vec<f64> = (0..500).map(|i| (2000 + i * 3) as f64 / 100.0).collect();
        let bytes = encode(&vals);
        assert_bits_eq(&decode(&bytes).unwrap(), &vals);
    }

    #[test]
    fn elf_beats_gorilla_on_low_precision() {
        let vals: Vec<f64> = (0..2000)
            .map(|i| ((20.0 + (i as f64 * 0.1).sin() * 5.0) * 100.0).round() / 100.0)
            .collect();
        let elf = encode(&vals);
        let gor = crate::gorilla::encode_f64(&vals);
        assert_bits_eq(&decode(&elf).unwrap(), &vals);
        assert!(
            elf.len() < gor.len(),
            "elf {} should beat gorilla {} on 2-decimal data",
            elf.len(),
            gor.len()
        );
    }

    #[test]
    fn roundtrip_full_precision() {
        let vals: Vec<f64> = (0..200)
            .map(|i| (i as f64).sqrt() * std::f64::consts::PI)
            .collect();
        assert_bits_eq(&decode(&encode(&vals)).unwrap(), &vals);
    }

    #[test]
    fn roundtrip_specials() {
        let vals = vec![0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e-308, -1e308];
        assert_bits_eq(&decode(&encode(&vals)).unwrap(), &vals);
    }

    #[test]
    fn empty_single() {
        assert!(decode(&encode(&[])).unwrap().is_empty());
        assert_bits_eq(&decode(&encode(&[0.07])).unwrap(), &[0.07]);
    }

    #[test]
    fn sig_digit_detection() {
        assert_eq!(sig_digits(20.47), 4);
        assert_eq!(sig_digits(0.5), 1);
        assert_eq!(sig_digits(100.0), 1);
    }
}
