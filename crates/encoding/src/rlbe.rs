//! RLBE: Run-Length Binary (Fibonacci) Encoding — delta, then run-length
//! over the deltas, then Fibonacci packing of both runs and deltas
//! (paper Table I, RLBE row; Spiegel et al.).
//!
//! Page layout (big-endian):
//!
//! ```text
//! u32 count
//! i64 first
//! u32 n_pairs
//! bits payload            // n_pairs × (fib(run), fib(zigzag(Δ) + 1))
//! ```
//!
//! Every codeword terminates with the `11` bit pair, enabling the
//! variable-width separator scan of Figure 7.

use crate::bitio::{BitReader, BitWriter};
use crate::fibonacci::write_fib;
use crate::zigzag::{decode_zigzag, encode_zigzag};
use crate::{Error, Result};

/// Encodes `values` with delta → run-length → Fibonacci.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut pairs: Vec<(i64, u64)> = Vec::new();
    for w in values.windows(2) {
        let d = w[1].wrapping_sub(w[0]);
        match pairs.last_mut() {
            Some((delta, run)) if *delta == d => *run += 1,
            _ => pairs.push((d, 1)),
        }
    }
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    w.write_bits(values.first().copied().unwrap_or(0) as u64, 64);
    w.write_bits(pairs.len() as u64, 32);
    for &(d, r) in &pairs {
        write_fib(&mut w, r);
        let z = encode_zigzag(d);
        // zigzag(i64) can be u64::MAX; Fibonacci tops out below 2^63 — the
        // run-length stage never produces such deltas for real sensor
        // streams, but guard by saturating into two codewords.
        if z >= (1 << 62) {
            write_fib(&mut w, 1); // escape marker: value 0 after the +1 shift
            w.write_bits(z, 64);
        } else {
            write_fib(&mut w, z + 2); // +2 keeps 1 free as the escape marker
        }
    }
    w.finish()
}

/// Serial reference decoder.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let mut r = BitReader::new(bytes);
    let count =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("rlbe", r.bit_pos(), "count"))? as usize;
    let first = r
        .read_bits(64)
        .ok_or_else(|| Error::corrupt_at_bit("rlbe", r.bit_pos(), "first"))? as i64;
    let n_pairs =
        r.read_bits(32)
            .ok_or_else(|| Error::corrupt_at_bit("rlbe", r.bit_pos(), "pairs"))? as usize;
    if count > crate::MAX_PAGE_COUNT || n_pairs > count.max(1) {
        return Err(Error::corrupt_at_bit(
            "rlbe",
            r.bit_pos(),
            "counts exceed page cap",
        ));
    }
    if count == 0 {
        return Ok(Vec::new());
    }
    // Runs legitimately expand past the bit budget; cap the prealloc so a
    // hostile count cannot reserve MAX_PAGE_COUNT slots up front.
    let mut out = Vec::with_capacity(count.min(1 << 16));
    out.push(first);
    let mut cur = first;
    // Variable-width unpacking via the Figure 7 separator scan: the
    // word-level FibReader replaces the bit-serial codeword walk.
    let mut fib = crate::fibonacci::FibReader::at(bytes, r.bit_pos());
    for _ in 0..n_pairs {
        let run = fib
            .next()
            .ok_or_else(|| Error::corrupt_at_bit("rlbe", fib.pos, "run"))?;
        let code = fib
            .next()
            .ok_or_else(|| Error::corrupt_at_bit("rlbe", fib.pos, "delta"))?;
        let z = if code == 1 {
            let mut esc = BitReader::at(bytes, fib.pos);
            let v = esc
                .read_bits(64)
                .ok_or_else(|| Error::corrupt_at_bit("rlbe", esc.bit_pos(), "escape"))?;
            fib.pos = esc.bit_pos();
            v
        } else {
            code - 2
        };
        let d = decode_zigzag(z);
        if run as usize > count - out.len() {
            return Err(Error::corrupt_at_bit(
                "rlbe",
                r.bit_pos(),
                "run overflows declared count",
            ));
        }
        for _ in 0..run {
            cur = cur.wrapping_add(d);
            out.push(cur);
        }
    }
    if out.len() != count {
        return Err(Error::BadCount {
            declared: count as u64,
            available: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_smooth_series() {
        let vals: Vec<i64> = (0..800).map(|i| 500 + (i / 10) * 2).collect();
        let bytes = encode(&vals);
        assert_eq!(decode(&bytes).unwrap(), vals);
        // Long runs of identical deltas → strong compression.
        assert!(bytes.len() * 4 < vals.len() * 8);
    }

    #[test]
    fn roundtrip_extremes_via_escape() {
        let vals = vec![0i64, i64::MAX, i64::MIN, 5, 5, 5];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[3])).unwrap(), vec![3]);
    }

    #[test]
    fn alternating_deltas() {
        let vals: Vec<i64> = (0..100).map(|i| if i % 2 == 0 { 10 } else { 20 }).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }
}
