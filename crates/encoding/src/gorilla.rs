//! Gorilla encoding (Pelkonen et al., VLDB'15): delta-of-delta with
//! variable-length prefix buckets for integers/timestamps, and
//! leading/trailing-zero XOR compression for floats — the `±, XOR / Flag /
//! Pattern` row of Table I. The single `0` bit for a zero delta-of-delta
//! is the "Flag" repeat encoder.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

// ---------------------------------------------------------------------------
// Integer (timestamp) side: delta-of-delta with prefix buckets.
// ---------------------------------------------------------------------------

/// Encodes integers with Gorilla delta-of-delta prefix codes.
///
/// Layout: `u32 count`, `i64 first`, `i64 second_delta_base`(first delta,
/// varint-free raw 64), then per value a bucket-coded delta-of-delta:
/// `0` → 0; `10` + 7 bits → [−63, 64]; `110` + 9 bits → [−255, 256];
/// `1110` + 12 bits → [−2047, 2048]; `1111` + 64 bits otherwise.
pub fn encode_i64(values: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    if values.is_empty() {
        return w.finish();
    }
    w.write_bits(values[0] as u64, 64);
    if values.len() == 1 {
        return w.finish();
    }
    let first_delta = values[1].wrapping_sub(values[0]);
    w.write_bits(first_delta as u64, 64);
    let mut prev_delta = first_delta;
    for pair in values[1..].windows(2) {
        let delta = pair[1].wrapping_sub(pair[0]);
        let dod = delta.wrapping_sub(prev_delta);
        prev_delta = delta;
        if dod == 0 {
            w.write_bit(false);
        } else if (-63..=64).contains(&dod) {
            w.write_bits(0b10, 2);
            w.write_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.write_bits(0b110, 3);
            w.write_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.write_bits(0b1110, 4);
            w.write_bits((dod + 2047) as u64, 12);
        } else {
            w.write_bits(0b1111, 4);
            w.write_bits(dod as u64, 64);
        }
    }
    w.finish()
}

/// Decodes a stream produced by [`encode_i64`].
pub fn decode_i64(bytes: &[u8]) -> Result<Vec<i64>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "gorilla",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    // Every decoded element consumes at least one payload bit, so a count
    // beyond the remaining bit budget is unsatisfiable — reject before
    // allocating `count` slots (hostile headers must not drive OOM).
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let first =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "first"))? as i64;
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let mut delta =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "delta0"))? as i64;
    let mut cur = first.wrapping_add(delta);
    out.push(cur);
    for _ in 2..count {
        let dod = if !r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod"))?
        {
            0
        } else if !r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod"))?
        {
            r.read_bits(7)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod7"))?
                as i64
                - 63
        } else if !r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod"))?
        {
            r.read_bits(9)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod9"))?
                as i64
                - 255
        } else if !r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod"))?
        {
            r.read_bits(12)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod12"))?
                as i64
                - 2047
        } else {
            r.read_bits(64)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "dod64"))?
                as i64
        };
        delta = delta.wrapping_add(dod);
        cur = cur.wrapping_add(delta);
        out.push(cur);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Float (value) side: XOR with leading/trailing-zero windows.
// ---------------------------------------------------------------------------

/// Encodes floats with Gorilla XOR compression.
///
/// Per value: `0` → identical to previous; `10` → XOR fits the previous
/// leading/trailing window (write meaningful bits); `11` → new window
/// (5 bits leading count, 6 bits meaningful length, then the bits).
pub fn encode_f64(values: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(values.len() as u64, 32);
    if values.is_empty() {
        return w.finish();
    }
    let mut prev = values[0].to_bits();
    w.write_bits(prev, 64);
    let mut prev_lead = 65u32; // forces a new window on first non-zero XOR
    let mut prev_trail = 0u32;
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let lead = xor.leading_zeros().min(31);
        let trail = xor.trailing_zeros();
        if prev_lead <= lead && prev_trail <= trail {
            // Fits the previous window.
            w.write_bit(false);
            let meaningful = 64 - prev_lead - prev_trail;
            w.write_bits(xor >> prev_trail, meaningful as u8);
        } else {
            w.write_bit(true);
            let meaningful = 64 - lead - trail;
            w.write_bits(lead as u64, 5);
            // Store meaningful-1 in 6 bits (meaningful ∈ 1..=64).
            w.write_bits((meaningful - 1) as u64, 6);
            w.write_bits(xor >> trail, meaningful as u8);
            prev_lead = lead;
            prev_trail = trail;
        }
    }
    w.finish()
}

/// Decodes a stream produced by [`encode_f64`].
pub fn decode_f64(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "gorilla",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    if count > r.remaining_bits().max(1) {
        return Err(Error::BadCount {
            declared: count as u64,
            available: r.remaining_bits() as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let mut prev = r
        .read_bits(64)
        .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f first"))?;
    out.push(f64::from_bits(prev));
    let mut lead = 0u32;
    let mut trail = 0u32;
    for _ in 1..count {
        if !r
            .read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f flag"))?
        {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f flag2"))?
        {
            lead = r
                .read_bits(5)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f lead"))?
                as u32;
            let meaningful = r
                .read_bits(6)
                .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f len"))?
                as u32
                + 1;
            // A valid window has lead + meaningful ≤ 64; a hostile stream
            // can declare up to 31 + 64 and underflow the trail count.
            if lead + meaningful > 64 {
                return Err(Error::corrupt_at_bit(
                    "gorilla",
                    r.bit_pos(),
                    "f window exceeds 64 bits",
                ));
            }
            trail = 64 - lead - meaningful;
        }
        let meaningful = 64 - lead - trail;
        let xor = r
            .read_bits(meaningful as u8)
            .ok_or_else(|| Error::corrupt_at_bit("gorilla", r.bit_pos(), "f bits"))?
            << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_regular_timestamps() {
        let ts: Vec<i64> = (0..2000).map(|i| 1_600_000_000_000 + i * 500).collect();
        let bytes = encode_i64(&ts);
        assert_eq!(decode_i64(&bytes).unwrap(), ts);
        // Regular cadence → ~1 bit per point after the header.
        assert!(bytes.len() < 20 + ts.len() / 4);
    }

    #[test]
    fn int_roundtrip_jittery() {
        let ts: Vec<i64> = (0..500)
            .scan(0i64, |acc, i| {
                *acc += 1000 + (i % 37) - 18;
                Some(*acc)
            })
            .collect();
        assert_eq!(decode_i64(&encode_i64(&ts)).unwrap(), ts);
    }

    #[test]
    fn int_roundtrip_extremes() {
        let vals = vec![i64::MIN, i64::MAX, 0, -5, 5, i64::MAX];
        assert_eq!(decode_i64(&encode_i64(&vals)).unwrap(), vals);
    }

    #[test]
    fn int_edge_counts() {
        for vals in [vec![], vec![7], vec![7, 9]] {
            assert_eq!(decode_i64(&encode_i64(&vals)).unwrap(), vals);
        }
    }

    #[test]
    fn float_roundtrip_sensor_like() {
        let vals: Vec<f64> = (0..800)
            .map(|i| 20.0 + (i as f64 * 0.01).sin() * 2.0)
            .collect();
        let bytes = encode_f64(&vals);
        let back = decode_f64(&bytes).unwrap();
        assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn float_roundtrip_repeats_and_specials() {
        let vals = vec![
            1.5,
            1.5,
            1.5,
            -0.0,
            0.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
            std::f64::consts::PI,
        ];
        let back = decode_f64(&encode_f64(&vals)).unwrap();
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn float_empty_single() {
        assert!(decode_f64(&encode_f64(&[])).unwrap().is_empty());
        let one = decode_f64(&encode_f64(&[2.25])).unwrap();
        assert_eq!(one, vec![2.25]);
    }
}
