//! ZigZag mapping between signed deltas and unsigned packable values
//! (used by Sprintz, paper Table I).

/// Maps a signed integer to an unsigned one: 0→0, -1→1, 1→2, -2→3, …
#[inline]
pub fn encode_zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`encode_zigzag`].
#[inline]
pub fn decode_zigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(encode_zigzag(0), 0);
        assert_eq!(encode_zigzag(-1), 1);
        assert_eq!(encode_zigzag(1), 2);
        assert_eq!(encode_zigzag(-2), 3);
        assert_eq!(encode_zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(encode_zigzag(i64::MIN), u64::MAX);
    }

    #[test]
    fn roundtrip_extremes() {
        for v in [
            0,
            1,
            -1,
            42,
            -42,
            i64::MAX,
            i64::MIN,
            i64::MAX - 1,
            i64::MIN + 1,
        ] {
            assert_eq!(decode_zigzag(encode_zigzag(v)), v);
        }
    }

    #[test]
    fn small_magnitudes_stay_small() {
        // The point of ZigZag: |v| <= 127 packs into 8 bits.
        for v in -127i64..=127 {
            assert!(encode_zigzag(v) < 256);
        }
    }
}
