//! Plain (uncompressed) encoding: raw 64-bit big-endian values behind a
//! count header. The no-compression baseline for ratio comparisons.

use crate::{Error, Result};

/// Encodes values as `u32 count` followed by raw big-endian `i64`s.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 8);
    out.extend_from_slice(&(values.len() as u32).to_be_bytes());
    for &v in values {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

/// Decodes a [`encode`]-produced stream.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    if bytes.len() < 4 {
        return Err(Error::Corrupt {
            codec: "plain",
            offset: 0,
            reason: "header truncated",
        });
    }
    let mut hdr = [0u8; 4];
    hdr.copy_from_slice(&bytes[..4]);
    let count = u32::from_be_bytes(hdr) as usize;
    let need = 4 + count * 8;
    if bytes.len() < need {
        return Err(Error::BadCount {
            declared: count as u64,
            available: ((bytes.len() - 4) / 8) as u64,
        });
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = 4 + i * 8;
        let mut word = [0u8; 8];
        word.copy_from_slice(&bytes[off..off + 8]);
        out.push(i64::from_be_bytes(word));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let vals = vec![0, -1, i64::MAX, i64::MIN, 123456789];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn truncated_is_error() {
        let bytes = encode(&[1, 2, 3]);
        assert!(decode(&bytes[..10]).is_err());
        assert!(decode(&[0]).is_err());
    }
}
