//! # etsqp-encoding — IoT time-series codecs
//!
//! Implements the combined Delta–Repeat–Packing encoder families of the
//! paper's Table I, all writing **big-endian bit streams** with the
//! incremental (buffer-then-flush) behaviour IoT databases need
//! (paper §I, "space efficiency" and "flexibility"):
//!
//! | Codec        | Delta | Repeat     | Packing          |
//! |--------------|-------|------------|------------------|
//! | [`ts2diff`]  | ±/±²  | none       | Bitpack          |
//! | [`rle`]      | —     | Run-length | Bitpack          |
//! | [`delta_rle`]| ±     | Run-length | Bitpack          |
//! | [`sprintz`]  | ±     | none       | ZigZag + Bitpack |
//! | [`stream_vbyte`] | ± | none       | ZigZag + StreamVByte |
//! | [`rlbe`]     | ±     | Run-length | Fibonacci        |
//! | [`gorilla`]  | ±, XOR| flag       | pattern          |
//! | [`chimp`]    | XOR   | none       | pattern          |
//! | [`elf`]      | XOR   | none       | pattern (erase)  |
//! | [`plain`]    | —     | —          | fixed 64-bit     |
//!
//! The integer codecs expose *parsed page metadata* ([`ts2diff::Ts2DiffPage`],
//! [`delta_rle::DeltaRlePage`]) so the ETSQP pipelines can drive the SIMD
//! unpack kernels directly over the packed payload without materializing
//! decoded arrays — the foundation of operator fusion (paper §IV).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitio;
pub mod chimp;
pub mod delta_rle;
pub mod elf;
pub mod fibonacci;
pub mod gorilla;
pub mod plain;
pub mod rlbe;
pub mod rle;
pub mod sprintz;
pub mod stream_vbyte;
pub mod ts2diff;
pub mod zigzag;

/// Errors raised while decoding an encoded page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The byte stream is truncated or structurally invalid.
    Corrupt {
        /// Codec that detected the corruption (e.g. `"gorilla"`).
        codec: &'static str,
        /// Byte offset into the encoded stream at the point of detection.
        offset: usize,
        /// What was wrong at that offset.
        reason: &'static str,
    },
    /// A declared bit width is outside the codec's legal range.
    BadWidth(u8),
    /// The declared element count disagrees with the payload.
    BadCount {
        /// Element count the header declares.
        declared: u64,
        /// Elements the payload can actually hold.
        available: u64,
    },
}

impl Error {
    /// Builds a [`Error::Corrupt`] from a codec name, a *bit* position in
    /// the stream (as tracked by [`bitio::BitReader`]), and a reason.
    pub fn corrupt_at_bit(codec: &'static str, bit_pos: usize, reason: &'static str) -> Self {
        Error::Corrupt {
            codec,
            offset: bit_pos / 8,
            reason,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Corrupt {
                codec,
                offset,
                reason,
            } => write!(f, "corrupt {codec} page at byte {offset}: {reason}"),
            Error::BadWidth(w) => write!(f, "illegal packing width {w}"),
            Error::BadCount {
                declared,
                available,
            } => {
                write!(
                    f,
                    "declared {declared} elements but payload holds {available}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for decoding operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Upper bound on the element count any single encoded page may declare.
/// Pages are flushed from bounded receive buffers (paper §I), so real
/// pages are far smaller; the cap protects decoders from hostile headers.
pub const MAX_PAGE_COUNT: usize = 1 << 26;

/// Identifies the codec of an encoded column chunk (stored in page
/// headers by `etsqp-storage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Raw 64-bit big-endian values.
    Plain,
    /// First-order delta + bitpacking (IoTDB TS_2DIFF).
    Ts2Diff,
    /// Second-order delta + bitpacking (timestamp-style "two Deltas").
    Ts2DiffOrder2,
    /// Run-length over raw values.
    Rle,
    /// Run-length over deltas (the Delta–Repeat format of paper §IV).
    DeltaRle,
    /// Delta + ZigZag + bitpacking (Sprintz).
    Sprintz,
    /// Delta + ZigZag + byte-aligned Stream VByte (separated control
    /// stream, shuffle-table SIMD decode).
    StreamVByte,
    /// Delta + run-length + Fibonacci packing (RLBE).
    Rlbe,
    /// Gorilla delta-of-delta (timestamps) / XOR (values).
    Gorilla,
    /// Chimp XOR float compression.
    Chimp,
    /// Elf erased-XOR float compression.
    Elf,
    /// Gorilla XOR float compression (the value side of Gorilla).
    GorillaFloat,
}

impl Encoding {
    /// Short lowercase name used in reports and file headers.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Ts2Diff => "ts2diff",
            Encoding::Ts2DiffOrder2 => "ts2diff2",
            Encoding::Rle => "rle",
            Encoding::DeltaRle => "delta_rle",
            Encoding::Sprintz => "sprintz",
            Encoding::Rlbe => "rlbe",
            Encoding::Gorilla => "gorilla",
            Encoding::Chimp => "chimp",
            Encoding::Elf => "elf",
            Encoding::GorillaFloat => "gorilla_f",
            Encoding::StreamVByte => "stream_vbyte",
        }
    }

    /// Stable numeric tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Ts2Diff => 1,
            Encoding::Ts2DiffOrder2 => 2,
            Encoding::Rle => 3,
            Encoding::DeltaRle => 4,
            Encoding::Sprintz => 5,
            Encoding::Rlbe => 6,
            Encoding::Gorilla => 7,
            Encoding::Chimp => 8,
            Encoding::Elf => 9,
            Encoding::GorillaFloat => 10,
            Encoding::StreamVByte => 11,
        }
    }

    /// Inverse of [`Encoding::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Ts2Diff,
            2 => Encoding::Ts2DiffOrder2,
            3 => Encoding::Rle,
            4 => Encoding::DeltaRle,
            5 => Encoding::Sprintz,
            6 => Encoding::Rlbe,
            7 => Encoding::Gorilla,
            8 => Encoding::Chimp,
            9 => Encoding::Elf,
            10 => Encoding::GorillaFloat,
            11 => Encoding::StreamVByte,
            _ => {
                return Err(Error::Corrupt {
                    codec: "header",
                    offset: 0,
                    reason: "unknown encoding tag",
                })
            }
        })
    }

    /// Encodes an integer column with this codec.
    ///
    /// # Panics
    /// For the float-only codecs ([`Encoding::Chimp`], [`Encoding::Elf`]).
    pub fn encode_i64(self, values: &[i64]) -> Vec<u8> {
        match self {
            Encoding::Plain => plain::encode(values),
            Encoding::Ts2Diff => ts2diff::encode(values, 1),
            Encoding::Ts2DiffOrder2 => ts2diff::encode(values, 2),
            Encoding::Rle => rle::encode(values),
            Encoding::DeltaRle => delta_rle::encode(values),
            Encoding::Sprintz => sprintz::encode(values),
            Encoding::StreamVByte => stream_vbyte::encode(values),
            Encoding::Rlbe => rlbe::encode(values),
            Encoding::Gorilla => gorilla::encode_i64(values),
            Encoding::Chimp | Encoding::Elf | Encoding::GorillaFloat => {
                // lint:allow(no-panic-paths) -- encode-side programmer
                // error (documented `# Panics` contract), not a decode
                // path: encoders only ever see trusted in-memory values.
                panic!("{} is a float codec; use encode_f64", self.name())
            }
        }
    }

    /// Whether this codec stores `f64` columns.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Encoding::Chimp | Encoding::Elf | Encoding::GorillaFloat
        )
    }

    /// Encodes a float column with this codec.
    ///
    /// # Panics
    /// For integer codecs.
    pub fn encode_f64(self, values: &[f64]) -> Vec<u8> {
        match self {
            Encoding::GorillaFloat => gorilla::encode_f64(values),
            Encoding::Chimp => chimp::encode(values),
            Encoding::Elf => elf::encode(values),
            // lint:allow(no-panic-paths) -- encode-side programmer
            // error (documented `# Panics` contract), not a decode path.
            other => panic!("{} is an integer codec; use encode_i64", other.name()),
        }
    }

    /// Decodes a float column encoded with this codec.
    ///
    /// Dispatching an integer codec here returns [`Error::Corrupt`] rather
    /// than panicking: the codec tag comes from an on-disk page header, so
    /// a class mismatch is corrupt input, not a programming error.
    pub fn decode_f64(self, bytes: &[u8]) -> Result<Vec<f64>> {
        match self {
            Encoding::GorillaFloat => gorilla::decode_f64(bytes),
            Encoding::Chimp => chimp::decode(bytes),
            Encoding::Elf => elf::decode(bytes),
            other => Err(Error::Corrupt {
                codec: other.name(),
                offset: 0,
                reason: "integer codec dispatched as float column",
            }),
        }
    }

    /// Decodes an integer column encoded with this codec.
    ///
    /// Dispatching a float codec here returns [`Error::Corrupt`] rather
    /// than panicking, for the same reason as [`Encoding::decode_f64`].
    pub fn decode_i64(self, bytes: &[u8]) -> Result<Vec<i64>> {
        match self {
            Encoding::Plain => plain::decode(bytes),
            Encoding::Ts2Diff | Encoding::Ts2DiffOrder2 => ts2diff::decode(bytes),
            Encoding::Rle => rle::decode(bytes),
            Encoding::DeltaRle => delta_rle::decode(bytes),
            Encoding::Sprintz => sprintz::decode(bytes),
            Encoding::StreamVByte => stream_vbyte::decode(bytes),
            Encoding::Rlbe => rlbe::decode(bytes),
            Encoding::Gorilla => gorilla::decode_i64(bytes),
            Encoding::Chimp | Encoding::Elf | Encoding::GorillaFloat => Err(Error::Corrupt {
                codec: self.name(),
                offset: 0,
                reason: "float codec dispatched as integer column",
            }),
        }
    }
}

/// Monotone mapping from `f64` to `i64` (IEEE-754 total order trick):
/// preserves `<`, so float min/max statistics live in integer page
/// headers and integer range pruning applies to float columns.
pub fn f64_to_ordered_i64(v: f64) -> i64 {
    let b = v.to_bits() as i64;
    // Negative floats: flip the 63 magnitude bits (arithmetic shift
    // propagates the sign into an all-ones mask, shifted to spare the
    // sign bit). Positives map to themselves.
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Inverse of [`f64_to_ordered_i64`].
pub fn ordered_i64_to_f64(v: i64) -> f64 {
    let b = v ^ (((v >> 63) as u64) >> 1) as i64;
    f64::from_bits(b as u64)
}

pub use zigzag::{decode_zigzag, encode_zigzag};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for enc in [
            Encoding::Plain,
            Encoding::Ts2Diff,
            Encoding::Ts2DiffOrder2,
            Encoding::Rle,
            Encoding::DeltaRle,
            Encoding::Sprintz,
            Encoding::Rlbe,
            Encoding::Gorilla,
            Encoding::StreamVByte,
            Encoding::Chimp,
            Encoding::Elf,
            Encoding::GorillaFloat,
        ] {
            assert_eq!(Encoding::from_tag(enc.tag()).unwrap(), enc);
        }
        assert!(Encoding::from_tag(200).is_err());
    }

    #[test]
    fn all_int_codecs_roundtrip_small_series() {
        let values: Vec<i64> = vec![12, 18, 22, 25, 27, 27, 27, 30, 17, -4, -4, 100];
        for enc in [
            Encoding::Plain,
            Encoding::Ts2Diff,
            Encoding::Ts2DiffOrder2,
            Encoding::Rle,
            Encoding::DeltaRle,
            Encoding::Sprintz,
            Encoding::Rlbe,
            Encoding::Gorilla,
            Encoding::StreamVByte,
        ] {
            let bytes = enc.encode_i64(&values);
            let back = enc
                .decode_i64(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", enc.name()));
            assert_eq!(back, values, "codec {}", enc.name());
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = Error::BadCount {
            declared: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn ordered_f64_mapping_is_monotone_and_invertible() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -3.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            2.25,
            1e300,
            f64::INFINITY,
        ];
        let mapped: Vec<i64> = vals.iter().map(|&v| f64_to_ordered_i64(v)).collect();
        // Monotone (−0.0 and 0.0 map adjacently but ordered).
        assert!(mapped.windows(2).all(|w| w[0] < w[1]), "{mapped:?}");
        for &v in &vals {
            assert_eq!(
                ordered_i64_to_f64(f64_to_ordered_i64(v)).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn float_codec_dispatch() {
        let vals = vec![1.5, 2.25, 2.25, -7.0];
        for enc in [Encoding::GorillaFloat, Encoding::Chimp, Encoding::Elf] {
            assert!(enc.is_float());
            let bytes = enc.encode_f64(&vals);
            let back = enc.decode_f64(&bytes).unwrap();
            assert_eq!(back.len(), vals.len());
            for (a, b) in back.iter().zip(&vals) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", enc.name());
            }
        }
        assert!(!Encoding::Ts2Diff.is_float());
    }
}
