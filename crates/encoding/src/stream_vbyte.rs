//! Stream VByte encoding: first-order delta → ZigZag → byte-aligned
//! variable-length packing with a *separated* control stream
//! (Lemire, Kurz & Rupp, "Stream VByte: Faster Byte-Oriented Integer
//! Compression").
//!
//! Unlike the bit-packed codecs in this crate, the payload is two
//! byte streams, so a SIMD decoder can process four values per
//! `pshufb` by looking the control byte up in a 256-entry shuffle
//! table (the tables live in `etsqp-simd::tables`):
//!
//! ```text
//! u32 count               // big-endian, total decoded elements
//! i64 first               // big-endian, first raw value
//! u8  mode                // 0 = quad stream, 1 = wide fallback
//! u8[] controls           // mode 0: ceil((count−1)/4) control bytes
//! u8[] data               // mode 0: 1–4 little-endian bytes per delta
//!                         // mode 1: count × 8 big-endian raw values
//! ```
//!
//! Each control byte holds four 2-bit length codes, value `k` of the
//! quad at bits `2k` (LSB-first, the canonical Stream VByte order);
//! code `c` means the ZigZag'd delta occupies `c + 1` **little-endian**
//! bytes in the data stream. Little-endian is deliberate — it is what
//! makes the shuffle-table decode a single byte permutation — and is
//! confined to the data stream; headers stay big-endian like every
//! other codec here.
//!
//! Mode 1 is the encoder-chosen fallback when any ZigZag'd delta
//! exceeds `u32::MAX` (Stream VByte is a 32-bit format): the payload
//! is then the raw values, eight big-endian bytes each.

use crate::bitio::{BitReader, BitWriter};
use crate::zigzag::{decode_zigzag, encode_zigzag};
use crate::{Error, Result};

/// Byte length of the fixed header (`count`, `first`, `mode`).
pub const HEADER_BYTES: usize = 4 + 8 + 1;

/// Parsed Stream VByte page metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvbPage<'a> {
    /// Total decoded element count.
    pub count: usize,
    /// First raw value.
    pub first: i64,
    /// Payload layout: 0 = control/data quad streams, 1 = wide fallback.
    pub mode: u8,
    /// Control bytes (mode 0; empty in mode 1).
    pub controls: &'a [u8],
    /// Data stream (ZigZag'd delta bytes in mode 0, raw values in mode 1).
    pub data: &'a [u8],
    /// Exact bytes of `data` the declared deltas consume (mode 0).
    pub data_len: usize,
    /// Upper bound on `|Σ deltas|` for any prefix, derived from the
    /// control stream alone: `Σ 2^(8·len_k − 1)`. Sound against hostile
    /// streams because a `len_k`-byte ZigZag value cannot exceed
    /// `2^(8·len_k)`, so the decoded delta magnitude is ≤ `2^(8·len_k − 1)`.
    pub rel_bound: u128,
}

impl SvbPage<'_> {
    /// Number of stored deltas (count − 1, saturating).
    pub fn num_deltas(&self) -> usize {
        self.count.saturating_sub(1)
    }
}

/// Encodes `values` with delta + ZigZag + Stream VByte packing.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let deltas: Vec<u64> = values
        .windows(2)
        .map(|w| encode_zigzag(w[1].wrapping_sub(w[0])))
        .collect();
    let wide = deltas.iter().any(|&z| z > u32::MAX as u64);
    let mut w = BitWriter::with_capacity_bits((HEADER_BYTES + values.len() * 5) * 8);
    w.write_bits(values.len() as u64, 32);
    w.write_bits(values.first().copied().unwrap_or(0) as u64, 64);
    w.write_bits(wide as u64, 8);
    let mut out = w.finish();
    if wide {
        for &v in values {
            out.extend_from_slice(&(v as u64).to_be_bytes());
        }
        return out;
    }
    // Control stream first (its length is derivable from count alone),
    // then the data stream.
    let ctrl_at = out.len();
    out.resize(ctrl_at + deltas.len().div_ceil(4), 0);
    let mut data = Vec::with_capacity(deltas.len() * 2);
    for (k, &z) in deltas.iter().enumerate() {
        let bytes = z.to_le_bytes();
        let len = if z < 1 << 8 {
            1
        } else if z < 1 << 16 {
            2
        } else if z < 1 << 24 {
            3
        } else {
            4
        };
        data.extend_from_slice(&bytes[..len]);
        out[ctrl_at + k / 4] |= ((len - 1) as u8) << (2 * (k % 4));
    }
    out.extend_from_slice(&data);
    out
}

/// Parses the page header and splits the control/data streams,
/// validating that the data stream holds every declared delta.
pub fn parse(bytes: &[u8]) -> Result<SvbPage<'_>> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("stream_vbyte", r.bit_pos(), "count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "stream_vbyte",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    let first = r
        .read_bits(64)
        .ok_or_else(|| Error::corrupt_at_bit("stream_vbyte", r.bit_pos(), "first"))?
        as i64;
    let mode = r
        .read_bits(8)
        .ok_or_else(|| Error::corrupt_at_bit("stream_vbyte", r.bit_pos(), "mode"))?
        as u8;
    if mode > 1 {
        return Err(Error::corrupt_at_bit(
            "stream_vbyte",
            r.bit_pos(),
            "unknown payload mode",
        ));
    }
    let rest = &bytes[HEADER_BYTES..];
    if mode == 1 {
        if rest.len() < count * 8 {
            return Err(Error::corrupt_at_bit(
                "stream_vbyte",
                HEADER_BYTES * 8,
                "wide payload truncated",
            ));
        }
        return Ok(SvbPage {
            count,
            first,
            mode,
            controls: &[],
            data: rest,
            data_len: count * 8,
            rel_bound: 0,
        });
    }
    let n_deltas = count.saturating_sub(1);
    let n_ctrl = n_deltas.div_ceil(4);
    if rest.len() < n_ctrl {
        return Err(Error::corrupt_at_bit(
            "stream_vbyte",
            HEADER_BYTES * 8,
            "control stream truncated",
        ));
    }
    let (controls, data) = rest.split_at(n_ctrl);
    // One pass over the control stream yields the exact data length and
    // the prefix-sum magnitude bound the SIMD fast path gates on.
    let mut data_len = 0usize;
    let mut rel_bound = 0u128;
    for (i, &c) in controls.iter().enumerate() {
        let codes = if (i + 1) * 4 <= n_deltas {
            4
        } else {
            n_deltas - i * 4
        };
        for k in 0..codes {
            let len = ((c >> (2 * k)) & 3) as usize + 1;
            data_len += len;
            rel_bound += 1u128 << (8 * len - 1);
        }
    }
    if data.len() < data_len {
        return Err(Error::corrupt_at_bit(
            "stream_vbyte",
            (HEADER_BYTES + n_ctrl) * 8,
            "data stream truncated",
        ));
    }
    Ok(SvbPage {
        count,
        first,
        mode,
        controls,
        data,
        data_len,
        rel_bound,
    })
}

/// Serial reference decoder.
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let page = parse(bytes)?;
    decode_from_parts(&page)
}

/// Serial decode of an already-parsed page (the scalar twin of the
/// shuffle-table SIMD path in `etsqp-core::decode`).
pub fn decode_from_parts(page: &SvbPage<'_>) -> Result<Vec<i64>> {
    if page.count == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(page.count);
    if page.mode == 1 {
        for chunk in page.data[..page.count * 8].chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out.push(i64::from_be_bytes(b));
        }
        return Ok(out);
    }
    out.push(page.first);
    let mut cur = page.first;
    let mut pos = 0usize;
    for k in 0..page.num_deltas() {
        let len = ((page.controls[k / 4] >> (2 * (k % 4))) & 3) as usize + 1;
        // parse() checked `data_len`, so the slice is in bounds.
        let mut b = [0u8; 4];
        b[..len].copy_from_slice(&page.data[pos..pos + len]);
        pos += len;
        cur = cur.wrapping_add(decode_zigzag(u32::from_le_bytes(b) as u64));
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_magnitudes() {
        // Deltas spanning all four byte-length classes.
        let mut vals = vec![1_000_000i64];
        for (i, step) in [1i64, -200, 70_000, -9_000_000, 3, 0, 2_000_000_000]
            .iter()
            .cycle()
            .take(300)
            .enumerate()
        {
            vals.push(vals[i] + step);
        }
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.mode, 0);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn roundtrip_extremes_uses_wide_mode() {
        let vals = vec![0i64, i64::MAX, i64::MIN, -1, 1];
        let bytes = encode(&vals);
        assert_eq!(parse(&bytes).unwrap().mode, 1);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn empty_single_and_pair() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[-9])).unwrap(), vec![-9]);
        assert_eq!(decode(&encode(&[5, 7])).unwrap(), vec![5, 7]);
    }

    #[test]
    fn control_stream_is_separated_and_exact() {
        let vals: Vec<i64> = (0..17i64).map(|i| i * 100).collect(); // 16 deltas
        let bytes = encode(&vals);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.controls.len(), 4);
        // delta 100 → zigzag 200 → 1 byte each (all length codes 0).
        assert_eq!(page.data_len, 16);
        assert_eq!(page.controls[0], 0);
    }

    #[test]
    fn truncations_are_rejected() {
        let vals: Vec<i64> = (0..100i64).map(|i| i * 3000).collect();
        let bytes = encode(&vals);
        for cut in [bytes.len() - 1, HEADER_BYTES + 3, HEADER_BYTES, 7, 0] {
            assert!(parse(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn hostile_controls_do_not_overread() {
        // Claim 4-byte deltas everywhere but supply a short data stream.
        let vals: Vec<i64> = (0..40i64).collect();
        let mut bytes = encode(&vals);
        for c in &mut bytes[HEADER_BYTES..HEADER_BYTES + 10] {
            *c = 0xff;
        }
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn rel_bound_is_conservative() {
        let vals: Vec<i64> = (0..1000i64).map(|i| i * 7).collect();
        let page_bytes = encode(&vals);
        let page = parse(&page_bytes).unwrap();
        // 999 one-byte deltas → bound 999 · 2^7.
        assert_eq!(page.rel_bound, 999 * 128);
        assert!(page.rel_bound >= (vals[999] - vals[0]).unsigned_abs() as u128);
    }
}
