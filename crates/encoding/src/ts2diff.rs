//! TS2DIFF: delta (order 1) or delta-of-delta (order 2) encoding with
//! min-base subtraction and bit-packing — the widely applied IoT format
//! the paper's running example uses (Figure 1(b)).
//!
//! Page layout (all multi-byte integers big-endian):
//!
//! ```text
//! u8  order (1 or 2)
//! u32 count
//! i64 first[order]          // the first `min(order, count)` raw values
//! i64 min_delta             // the paper's `base`
//! u8  width                 // packing width ω of (delta − base)
//! u8[] payload              // (count − order) packed deltas, byte-aligned
//! ```
//!
//! The stored value for element `i` is `d_i − min_delta ≥ 0` packed in
//! `width` bits, where `d_i` is the order-`order` difference. Decoding is
//! `v_i = v_{i−1} + base + stored_i` (order 1), applied twice for order 2 —
//! exactly the `dec_Delta(Γ_{ω→ω'}(s) + base)` expression of Example 3.

use crate::bitio::{bits_needed_u64, BitReader, BitWriter};
use crate::{Error, Result};

/// Parsed TS2DIFF page metadata: everything the vectorized pipeline needs
/// to unpack and fuse without touching the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ts2DiffPage<'a> {
    /// Delta order (1 or 2).
    pub order: u8,
    /// Total number of encoded values.
    pub count: usize,
    /// The first `order` raw values (second slot unused for order 1).
    pub first: [i64; 2],
    /// The paper's `base`: minimum delta subtracted before packing.
    pub min_delta: i64,
    /// Packing width ω in bits (0 when all deltas equal `min_delta`).
    pub width: u8,
    /// Packed delta payload (starts byte-aligned).
    pub payload: &'a [u8],
}

impl<'a> Ts2DiffPage<'a> {
    /// Number of packed deltas in the payload.
    pub fn num_deltas(&self) -> usize {
        self.count.saturating_sub(self.order as usize)
    }

    /// Upper bound of any delta, derived from the packing width — the
    /// `D_M ≤ minBase + 2^ω − 1` statistic of Proposition 4/5.
    pub fn delta_upper_bound(&self) -> i64 {
        if self.width >= 64 {
            return i64::MAX;
        }
        self.min_delta
            .saturating_add(((1u128 << self.width) - 1).min(i64::MAX as u128) as i64)
    }

    /// Lower bound of any delta (`D_m ≥ minBase`).
    pub fn delta_lower_bound(&self) -> i64 {
        self.min_delta
    }
}

/// Encodes `values` with delta order 1 or 2.
///
/// ```
/// // The paper's Figure 1(b) velocity series.
/// let bytes = etsqp_encoding::ts2diff::encode(&[12, 76, 142, 205], 1);
/// let page = etsqp_encoding::ts2diff::parse(&bytes).unwrap();
/// assert_eq!(page.min_delta, 63);     // the "base"
/// assert_eq!(page.width, 2);          // 2-bit packed deltas
/// assert_eq!(etsqp_encoding::ts2diff::decode(&bytes).unwrap(),
///            vec![12, 76, 142, 205]);
/// ```
///
/// # Panics
/// If `order` is not 1 or 2.
pub fn encode(values: &[i64], order: u8) -> Vec<u8> {
    encode_with_width(values, order, 0)
}

/// Like [`encode`], but packs deltas with at least `min_width` bits —
/// the paper's Figure 12(e-f) sweeps the packing width while the data
/// stays unvaried, which widens `D_M = minBase + 2^ω − 1` and weakens
/// the pruning bounds.
///
/// # Panics
/// If `order` is not 1 or 2, or `min_width` is too small for the data
/// (narrower than the required width it is simply ignored).
#[allow(clippy::needless_range_loop)] // first[i] mirrors the format spec
pub fn encode_with_width(values: &[i64], order: u8, min_width: u8) -> Vec<u8> {
    assert!(order == 1 || order == 2, "TS2DIFF order must be 1 or 2");
    assert!(min_width <= 64);
    let count = values.len();
    let o = order as usize;
    // Compute order-`order` differences (wrapping, mod 2^64 semantics).
    let mut deltas: Vec<i64> = Vec::with_capacity(count.saturating_sub(o));
    if count > o {
        match order {
            1 => {
                for w in values.windows(2) {
                    deltas.push(w[1].wrapping_sub(w[0]));
                }
            }
            _ => {
                let mut prev_d = values[1].wrapping_sub(values[0]);
                for w in values[1..].windows(2) {
                    let d = w[1].wrapping_sub(w[0]);
                    deltas.push(d.wrapping_sub(prev_d));
                    prev_d = d;
                }
            }
        }
    }
    let min_delta = deltas.iter().copied().min().unwrap_or(0);
    let width = deltas
        .iter()
        .map(|&d| bits_needed_u64(d.wrapping_sub(min_delta) as u64))
        .max()
        .unwrap_or(0)
        .max(if deltas.is_empty() { 0 } else { min_width });
    let mut w = BitWriter::with_capacity_bits(8 * (23 + o * 8) + deltas.len() * width as usize);
    w.write_bits(order as u64, 8);
    w.write_bits(count as u64, 32);
    for i in 0..o.min(count) {
        w.write_bits(values[i] as u64, 64);
    }
    // Pad the first-value slots so the header size is order-determined.
    for _ in count..o {
        w.write_bits(0, 64);
    }
    w.write_bits(min_delta as u64, 64);
    w.write_bits(width as u64, 8);
    for &d in &deltas {
        w.write_bits(d.wrapping_sub(min_delta) as u64, width);
    }
    w.finish()
}

/// Parses the page header, returning borrowed metadata and payload.
pub fn parse(bytes: &[u8]) -> Result<Ts2DiffPage<'_>> {
    let mut r = BitReader::new(bytes);
    let order =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "header"))? as u8;
    if order != 1 && order != 2 {
        return Err(Error::corrupt_at_bit("ts2diff", r.bit_pos(), "order"));
    }
    let count = r
        .read_bits(32)
        .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "count"))?
        as usize;
    if count > crate::MAX_PAGE_COUNT {
        return Err(Error::corrupt_at_bit(
            "ts2diff",
            r.bit_pos(),
            "count exceeds page cap",
        ));
    }
    let mut first = [0i64; 2];
    for f in first.iter_mut().take(order as usize) {
        *f = r
            .read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "first"))?
            as i64;
    }
    let min_delta =
        r.read_bits(64)
            .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "base"))? as i64;
    let width =
        r.read_bits(8)
            .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "width"))? as u8;
    if width > 64 {
        return Err(Error::BadWidth(width));
    }
    let header_bytes = r.bit_pos() / 8;
    let payload = &bytes[header_bytes..];
    let num_deltas = count.saturating_sub(order as usize);
    let need_bits = num_deltas * width as usize;
    if payload.len() * 8 < need_bits {
        return Err(Error::BadCount {
            declared: count as u64,
            available: if width == 0 {
                0
            } else {
                (payload.len() * 8 / width as usize) as u64
            },
        });
    }
    Ok(Ts2DiffPage {
        order,
        count,
        first,
        min_delta,
        width,
        payload,
    })
}

/// Decodes a page back to raw values (serial reference decoder — the
/// vectorized path lives in `etsqp-core`).
pub fn decode(bytes: &[u8]) -> Result<Vec<i64>> {
    let page = parse(bytes)?;
    let mut out = Vec::with_capacity(page.count);
    let o = page.order as usize;
    for i in 0..o.min(page.count) {
        out.push(page.first[i]);
    }
    let mut r = BitReader::new(page.payload);
    match page.order {
        1 => {
            let mut prev = page.first[0];
            for _ in 0..page.num_deltas() {
                let stored = r
                    .read_bits(page.width)
                    .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "payload"))?;
                let delta = page.min_delta.wrapping_add(stored as i64);
                prev = prev.wrapping_add(delta);
                out.push(prev);
            }
        }
        _ => {
            let mut prev = page.first[1];
            let mut prev_d = page.first[1].wrapping_sub(page.first[0]);
            for _ in 0..page.num_deltas() {
                let stored = r
                    .read_bits(page.width)
                    .ok_or_else(|| Error::corrupt_at_bit("ts2diff", r.bit_pos(), "payload"))?;
                let dd = page.min_delta.wrapping_add(stored as i64);
                prev_d = prev_d.wrapping_add(dd);
                prev = prev.wrapping_add(prev_d);
                out.push(prev);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_example() {
        // Velocity series from Figure 1(b): 12, 76, 142, 205 with base 62.
        let values = vec![12i64, 76, 142, 205];
        let bytes = encode(&values, 1);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.count, 4);
        assert_eq!(page.first[0], 12);
        assert_eq!(page.min_delta, 63); // deltas 64, 66, 63 → base 63
        assert_eq!(page.width, 2); // stored 1, 3, 0
        assert_eq!(decode(&bytes).unwrap(), values);
    }

    #[test]
    fn roundtrip_order1_and_2() {
        let values: Vec<i64> = (0..1000).map(|i| 1000 + i * 3 + (i % 7)).collect();
        for order in [1u8, 2] {
            let bytes = encode(&values, order);
            assert_eq!(decode(&bytes).unwrap(), values, "order {order}");
        }
    }

    #[test]
    fn order2_wins_on_drifting_timestamps() {
        // Linearly drifting interval (delta = 1000 + i): order-1 width is
        // nonzero while order-2 deltas are constant → width 0.
        let ts: Vec<i64> = (0..500i64)
            .map(|i| 1_700_000_000_000 + i * 1000 + i * (i - 1) / 2)
            .collect();
        let b1 = encode(&ts, 1);
        let b2 = encode(&ts, 2);
        assert!(b2.len() < b1.len());
        let page = parse(&b2).unwrap();
        assert_eq!(page.width, 0);
        assert_eq!(decode(&b2).unwrap(), ts);
    }

    #[test]
    fn short_series_edge_cases() {
        for vals in [vec![], vec![42], vec![42, 17], vec![1, 2, 3]] {
            for order in [1u8, 2] {
                let bytes = encode(&vals, order);
                assert_eq!(decode(&bytes).unwrap(), vals, "{vals:?} order {order}");
            }
        }
    }

    #[test]
    fn negative_and_extreme_values() {
        let vals = vec![i64::MIN, 0, i64::MAX, -1, 1, i64::MAX, i64::MIN];
        let bytes = encode(&vals, 1);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn constant_series_needs_zero_width() {
        let vals = vec![7i64; 300];
        let bytes = encode(&vals, 1);
        let page = parse(&bytes).unwrap();
        assert_eq!(page.width, 0);
        assert_eq!(page.min_delta, 0);
        // 300 values in ~30 bytes of header only.
        assert!(bytes.len() < 40);
        assert_eq!(decode(&bytes).unwrap(), vals);
    }

    #[test]
    fn delta_bounds_from_width() {
        let vals = vec![0i64, 5, 9, 12, 20];
        let bytes = encode(&vals, 1);
        let page = parse(&bytes).unwrap();
        // deltas: 5,4,3,8 → base 3, stored max 5 → width 3 → D_M = 3 + 7.
        assert_eq!(page.delta_lower_bound(), 3);
        assert_eq!(page.delta_upper_bound(), 10);
    }

    #[test]
    fn corrupt_pages_rejected() {
        let bytes = encode(&[1, 2, 3, 4], 1);
        assert!(parse(&bytes[..3]).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 1);
        // Removing payload bytes must be detected via the count check.
        let vals: Vec<i64> = (0..100).map(|i| i * 1_000_003).collect();
        let big = encode(&vals, 1);
        assert!(parse(&big[..big.len() - 20]).is_err());
    }
}
