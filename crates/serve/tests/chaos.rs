//! Chaos/soak suite for the network service: hostile and unlucky client
//! behaviour must degrade the *connection*, never the server. Each
//! scenario asserts three things — the failure is typed, the shared
//! worker pool is never poisoned, and a post-chaos query still answers
//! bit-exact vs the engine queried directly (the oracle).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_serve::client::{Client, Response};
use etsqp_serve::proto::{encode_frame, ErrorCode, FrameType, VERSION};
use etsqp_serve::server::{self, ServerHandle};
use etsqp_serve::{AdmissionConfig, ServeConfig};

/// A db big enough that a full-scan aggregate spans many morsels in a
/// debug build (small pages = many cancellation points).
fn chaos_db() -> Arc<IotDb> {
    let db = IotDb::new(EngineOptions::default().with_page_points(512));
    db.create_series("s").unwrap();
    let n = 300_000i64;
    let ts: Vec<i64> = (0..n).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..n).map(|i| (i * 37) % 1000).collect();
    db.append_all("s", &ts, &vals).unwrap();
    db.flush().unwrap();
    Arc::new(db)
}

/// A query slow enough (multi-page scan + filter) to still be running
/// when chaos strikes.
const SLOW_SQL: &str = "SELECT SUM(s) FROM (SELECT * FROM s WHERE s > 3)";

fn start(db: Arc<IotDb>, cfg: ServeConfig) -> ServerHandle {
    server::start(db, "127.0.0.1:0", cfg).expect("bind")
}

/// The oracle check: the post-chaos answer over the wire must be
/// bit-exact vs the engine queried directly.
fn assert_oracle(handle: &ServerHandle, db: &IotDb) {
    let direct = db.query(SLOW_SQL).expect("direct query");
    let mut c = Client::connect(handle.addr()).expect("connect");
    match c.query(SLOW_SQL).expect("wire query") {
        Response::Rows(r) => {
            assert_eq!(r.rows, direct.rows, "post-chaos result drifted from oracle");
        }
        Response::ServerError(e) => panic!("post-chaos query failed: {e}"),
    }
}

#[test]
fn disconnect_mid_query_cancels_execution() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            admission: AdmissionConfig {
                max_inflight: 2,
                max_queue: 8,
                default_deadline: None,
            },
            ..ServeConfig::default()
        },
    );

    // Fire queries and slam the connection shut. The server must notice
    // the disconnect, fire the query's token, and reclaim the runner.
    // Timing-dependent (the query may occasionally win the race), so
    // retry until at least one cancellation is observed.
    let mut saw_cancel = false;
    'attempts: for _ in 0..25 {
        let before = handle.stats();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(&encode_frame(FrameType::Query, SLOW_SQL.as_bytes()))
            .expect("send");
        // Hold the connection until the query is actually in flight,
        // so the EOF below lands mid-query rather than pre-dispatch.
        let admit_deadline = Instant::now() + Duration::from_secs(2);
        while handle.stats().admitted <= before.admitted {
            if Instant::now() >= admit_deadline {
                panic!("query never admitted: {:?}", handle.stats());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Drop without reading the response: EOF mid-query.
        drop(stream);
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            let s = handle.stats();
            // The in-flight query either got cancelled (what we are
            // hunting) or finished before the server saw the EOF.
            if s.disconnect_cancels > before.disconnect_cancels && s.cancelled > before.cancelled {
                saw_cancel = true;
                break 'attempts;
            }
            if s.done_ok + s.done_err > before.done_ok + before.done_err {
                continue 'attempts; // finished first; retry the race
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    assert!(
        saw_cancel,
        "no disconnect ever cancelled a running query: {:?}",
        handle.stats()
    );

    // Runner and pool workers were reclaimed: the pool still answers,
    // bit-exact.
    assert_oracle(&handle, &db);
    let final_stats = handle.shutdown();
    assert!(final_stats.cancelled >= 1);
    assert_eq!(final_stats.proto_errors, 0);
}

#[test]
fn slow_loris_partial_frames_are_bounded() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            partial_frame_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    );

    // Three half-open frames: a lone version byte, a header missing its
    // payload, and a byte-dribble that then stalls.
    let mut lorises = Vec::new();
    for partial in [
        vec![VERSION],
        vec![VERSION, 0x01, 0xff, 0x00],
        encode_frame(FrameType::Query, b"SELECT")[..7].to_vec(),
    ] {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(&partial).expect("send partial");
        lorises.push(stream);
    }

    // Every parked connection must be closed by the half-open bound —
    // observed as EOF on our side.
    for mut stream in lorises {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = [0u8; 64];
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break, // server closed us: bound enforced
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    assert!(
                        Instant::now() < deadline,
                        "slow-loris connection never closed"
                    );
                }
                Err(_) => break, // reset also counts as closed
            }
        }
    }
    let s = handle.stats();
    assert!(
        s.slow_loris_closed >= 3,
        "expected 3 slow-loris closures, got {s:?}"
    );

    // The server itself is unharmed.
    assert_oracle(&handle, &db);
    handle.shutdown();
}

#[test]
fn oversized_and_malformed_frames_rejected_typed() {
    let db = chaos_db();
    let handle = start(Arc::clone(&db), ServeConfig::default());

    // Oversized: a header declaring a payload far past the cap must be
    // rejected from the header alone (no buffering of the body).
    {
        let mut c = Client::connect(handle.addr()).expect("connect");
        let mut hdr = vec![VERSION, 0x01];
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        c.stream().write_all(&hdr).expect("send");
        // The farewell is a typed Proto error frame, then close.
        match c.query_farewell() {
            Some(e) => assert_eq!(e.code, ErrorCode::Proto),
            None => panic!("no typed farewell for oversized frame"),
        }
    }

    // Bad version byte.
    {
        let mut c = Client::connect(handle.addr()).expect("connect");
        c.stream().write_all(&[0x7f; 8]).expect("send");
        match c.query_farewell() {
            Some(e) => assert_eq!(e.code, ErrorCode::Proto),
            None => panic!("no typed farewell for bad version"),
        }
    }

    // Non-UTF-8 query payload.
    {
        let mut c = Client::connect(handle.addr()).expect("connect");
        c.stream()
            .write_all(&encode_frame(FrameType::Query, &[0xff, 0xfe, 0x80]))
            .expect("send");
        match c.query_farewell() {
            Some(e) => assert_eq!(e.code, ErrorCode::Proto),
            None => panic!("no typed farewell for non-UTF-8 SQL"),
        }
    }

    let s = handle.stats();
    assert!(s.proto_errors >= 3, "typed proto errors missing: {s:?}");
    assert_oracle(&handle, &db);
    handle.shutdown();
}

#[test]
fn deadline_expiring_queries_return_typed_timeout() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            admission: AdmissionConfig {
                max_inflight: 2,
                max_queue: 8,
                // Far below the multi-page scan's debug-build runtime.
                default_deadline: Some(Duration::from_millis(2)),
            },
            ..ServeConfig::default()
        },
    );

    let mut c = Client::connect(handle.addr()).expect("connect");
    match c.query(SLOW_SQL).expect("wire query") {
        Response::ServerError(e) => assert_eq!(e.code, ErrorCode::Timeout, "{e}"),
        Response::Rows(_) => panic!("a 2 ms deadline survived a 300k-row debug scan"),
    }
    let s = handle.stats();
    assert!(s.timeouts >= 1, "timeout not counted: {s:?}");

    // Same server, same pool: a query without panic damage still works
    // (it will also time out; what matters is the typed error and that
    // a fresh unbounded server answers bit-exact below).
    handle.shutdown();

    let handle2 = start(Arc::clone(&db), ServeConfig::default());
    assert_oracle(&handle2, &db);
    handle2.shutdown();
}

#[test]
fn full_queue_burst_sheds_typed_and_recovers() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queue: 1,
                default_deadline: None,
            },
            ..ServeConfig::default()
        },
    );

    // Burst: 8 concurrent clients into capacity 1+1. Every response must
    // be either rows or a typed Overloaded with a usable retry hint.
    let addr = handle.addr();
    let mut joins = Vec::new();
    for _ in 0..8 {
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            match c.query(SLOW_SQL).expect("wire query") {
                Response::Rows(_) => (1u64, 0u64),
                Response::ServerError(e) => {
                    assert_eq!(e.code, ErrorCode::Overloaded, "unexpected error: {e}");
                    assert!(e.retry_after_ms >= 1, "shed without a retry hint");
                    (0, 1)
                }
            }
        }));
    }
    let (mut rows, mut sheds) = (0, 0);
    for j in joins {
        let (r, s) = j.join().expect("client thread");
        rows += r;
        sheds += s;
    }
    assert_eq!(rows + sheds, 8);
    assert!(sheds >= 1, "burst of 8 into capacity 2 never shed");
    assert!(rows >= 1, "burst starved every client");
    let s = handle.stats();
    assert_eq!(s.shed, sheds);
    assert_eq!(s.done_ok, rows);

    // Post-chaos: the queue drains back to empty and answers bit-exact.
    assert_oracle(&handle, &db);
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_inflight_queries() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            drain_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let direct = db.query(SLOW_SQL).expect("direct query");

    // A client mid-query while the server begins draining must still
    // get its (bit-exact) rows before the connection closes.
    let t = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.query(SLOW_SQL).expect("wire query")
    });
    // Give the query a moment to be admitted, then drain.
    std::thread::sleep(Duration::from_millis(5));
    let stats = handle.shutdown();
    match t.join().expect("client thread") {
        Response::Rows(r) => assert_eq!(r.rows, direct.rows),
        Response::ServerError(e) => {
            // Legal only if the query had not been admitted yet when the
            // drain began (then it is shed typed, never dropped).
            assert_eq!(e.code, ErrorCode::Overloaded, "{e}");
        }
    }
    assert_eq!(stats.proto_errors, 0);

    // After shutdown the port stops accepting.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "server still accepting after shutdown"
    );
}

#[test]
fn connection_cap_refuses_with_typed_farewell() {
    let db = chaos_db();
    let handle = start(
        Arc::clone(&db),
        ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        },
    );

    // Fill the cap with idle connections (keep them alive).
    let mut keep = Vec::new();
    for _ in 0..2 {
        let mut c = Client::connect(handle.addr()).expect("connect");
        c.ping().expect("ping");
        keep.push(c);
    }
    // The next connection gets an Overloaded farewell.
    let mut refused = Client::connect(handle.addr()).expect("connect");
    match refused.query_farewell() {
        Some(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert!(e.retry_after_ms >= 1);
        }
        None => panic!("refused connection got no farewell"),
    }
    let s = handle.stats();
    assert!(s.conns_refused >= 1, "{s:?}");

    // Capped connections still serve once slots free up.
    drop(keep);
    handle.shutdown();
}
