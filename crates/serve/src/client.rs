//! A small blocking client for the wire protocol.
//!
//! Used by the load generator (`crates/bench/src/bin/serve_bench.rs`),
//! the chaos suite, the CI smoke, and `etsqp-serve query`. One
//! connection, strictly sequential request/response — a client wanting
//! concurrency opens more [`Client`]s.
//!
//! The client treats the server as untrusted: response bytes go through
//! the same bounded [`FrameDecoder`] and typed payload parsers the
//! server uses, so a hostile or corrupted peer produces a
//! [`ClientError::Proto`], never a panic or an unbounded allocation.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    decode_error, decode_result, encode_frame, FrameDecoder, FrameType, ProtoError, WireError,
    WireResult, DEFAULT_MAX_FRAME_LEN,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server broke the protocol.
    Proto(ProtoError),
    /// The connection closed before a response arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A server response: rows, or the server's typed error frame.
#[derive(Debug)]
pub enum Response {
    /// The query ran; here are its rows.
    Rows(WireResult),
    /// The server answered with a typed error (shed, timeout, SQL…).
    ServerError(WireError),
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl Client {
    /// Connects with a default 10 s socket timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(10))
    }

    /// Connects; `timeout` bounds every socket read and write.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            dec: FrameDecoder::new(DEFAULT_MAX_FRAME_LEN),
        })
    }

    /// Sends one SQL query and blocks for its response frame.
    pub fn query(&mut self, sql: &str) -> Result<Response, ClientError> {
        let frame = encode_frame(FrameType::Query, sql.as_bytes());
        self.stream.write_all(&frame)?;
        loop {
            match self.read_frame()? {
                (FrameType::Result, payload) => {
                    return Ok(Response::Rows(decode_result(&payload)?))
                }
                (FrameType::Error, payload) => {
                    return Ok(Response::ServerError(decode_error(&payload)?))
                }
                // Unsolicited pongs are tolerated; anything else from a
                // server is a protocol violation.
                (FrameType::Pong, _) => {}
                (FrameType::Query, _) | (FrameType::Ping, _) => {
                    return Err(ClientError::Proto(ProtoError::BadPayload(
                        "server sent a client-only frame type",
                    )))
                }
            }
        }
    }

    /// Sends a ping and waits for the pong (a liveness check).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.stream.write_all(&encode_frame(FrameType::Ping, &[]))?;
        loop {
            if let (FrameType::Pong, _) = self.read_frame()? {
                return Ok(());
            }
        }
    }

    /// The raw stream (tests use this to misbehave on purpose).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Waits for the server's next frame without sending anything:
    /// the typed farewell error, if the server sent one before closing.
    /// `None` means the connection closed (or timed out) frameless.
    pub fn query_farewell(&mut self) -> Option<WireError> {
        loop {
            match self.read_frame() {
                Ok((FrameType::Error, payload)) => return decode_error(&payload).ok(),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }

    fn read_frame(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.dec.next_frame()? {
                return Ok((frame.kind, frame.payload));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.dec.extend(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}
