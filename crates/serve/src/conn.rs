//! Per-connection state machine.
//!
//! Each accepted socket gets one handler thread running a small
//! non-blocking loop; all waiting is bounded and cooperative, so every
//! failure mode an open network hands us degrades *that connection
//! only*:
//!
//! * **slow reader** — responses go through a write buffer flushed with
//!   non-blocking writes; while it is non-empty the handler reads no
//!   new requests (backpressure), and a peer that refuses to drain for
//!   [`crate::ServeConfig::write_stall_timeout`] is disconnected;
//! * **slow-loris writer** — a half-open frame that makes no progress
//!   for [`crate::ServeConfig::partial_frame_timeout`] closes the
//!   connection (complete frames arriving slowly are fine);
//! * **disconnect mid-query** — EOF or a reset while a query is
//!   in-flight fires the query's [`CancellationToken`], so the engine
//!   abandons it at the next morsel boundary and the runner and pool
//!   workers are reclaimed instead of computing a result nobody reads;
//! * **protocol violation** — a typed error frame is flushed
//!   best-effort, then the connection closes.
//!
//! The dialogue is strictly sequential (one in-flight query per
//! connection): a client wanting concurrency opens more connections,
//! which is exactly the unit the server's admission control and
//! connection cap reason about.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::cancel::CancellationToken;
use etsqp_core::Error as CoreError;

use crate::admission::{Job, Outcome};
use crate::proto::{
    encode_core_error, encode_error, encode_frame, encode_result, ErrorCode, Frame, FrameDecoder,
    FrameType,
};
use crate::server::Shared;

/// How long the handler sleeps when a loop iteration made no progress.
const IDLE_SLEEP: Duration = Duration::from_micros(300);

/// An in-flight query: where its outcome will arrive and the token that
/// cancels it if the connection goes away first.
struct Pending {
    rx: Receiver<Outcome>,
    ctl: CancellationToken,
}

/// Outbound bytes with non-blocking flushing and stall tracking.
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
    last_progress: Instant,
}

impl WriteBuf {
    fn new() -> WriteBuf {
        WriteBuf {
            buf: Vec::new(),
            pos: 0,
            last_progress: Instant::now(),
        }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn push(&mut self, frame: Vec<u8>) {
        if self.is_empty() {
            self.buf = frame;
            self.pos = 0;
        } else {
            self.buf.extend_from_slice(&frame);
        }
        self.last_progress = Instant::now();
    }

    /// Writes as much as the socket accepts. `Ok(true)` if progress was
    /// made, `Err` on a dead socket.
    fn flush(&mut self, stream: &mut TcpStream) -> std::io::Result<bool> {
        let mut progressed = false;
        while self.pos < self.buf.len() {
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.pos += n;
                    self.last_progress = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.is_empty() && !self.buf.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(progressed)
    }
}

/// Runs one connection to completion. Called on the connection's own
/// thread; returns when the peer is gone, misbehaves, or the server
/// drains.
pub(crate) fn handle(shared: &Arc<Shared>, mut stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let cfg = &shared.cfg;
    let mut dec = FrameDecoder::new(cfg.max_frame_len);
    let mut out = WriteBuf::new();
    let mut pending: Option<Pending> = None;
    let mut read_buf = vec![0u8; 16 * 1024];
    let mut last_rx_progress = Instant::now();
    // Set when the connection must close as soon as the write buffer
    // has been flushed (best-effort for error farewells).
    let mut closing = false;

    loop {
        let mut progressed = false;

        // 1. Flush pending output first: responses beat new work.
        match out.flush(&mut stream) {
            Ok(p) => progressed |= p,
            Err(_) => {
                disconnect(shared, &pending);
                return;
            }
        }
        if closing && out.is_empty() {
            return;
        }
        if !out.is_empty() && out.last_progress.elapsed() > cfg.write_stall_timeout {
            // The peer stopped draining its responses; reclaim the
            // connection (and its query, if one is somehow in flight).
            disconnect(shared, &pending);
            return;
        }

        // 2. Collect a finished query, encode its response.
        if let Some(p) = &pending {
            match p.rx.try_recv() {
                Ok(outcome) => {
                    let frame = match outcome.result {
                        Ok(r) => {
                            let payload = encode_result(&r);
                            if payload.len() > cfg.max_frame_len {
                                shared
                                    .stats
                                    .oversized_results
                                    .fetch_add(1, Ordering::Relaxed);
                                encode_frame(
                                    FrameType::Error,
                                    &encode_error(
                                        ErrorCode::Internal,
                                        0,
                                        "result exceeds the frame cap; narrow the query",
                                    ),
                                )
                            } else {
                                encode_frame(FrameType::Result, &payload)
                            }
                        }
                        Err(e) => encode_frame(FrameType::Error, &encode_core_error(&e)),
                    };
                    out.push(frame);
                    pending = None;
                    progressed = true;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    // The runner pool dropped the job without replying
                    // (drain cancelled it); tell the client.
                    out.push(encode_frame(
                        FrameType::Error,
                        &encode_core_error(&CoreError::Cancelled),
                    ));
                    pending = None;
                    progressed = true;
                }
            }
        }

        // 3. Read from the peer (even mid-query, to detect disconnects
        //    promptly). Intake is bounded: once the decoder holds a full
        //    frame's worth of pipelined bytes, reading pauses and TCP
        //    backpressure takes over — the client's kernel buffer fills,
        //    but no server-side allocation grows with client behaviour.
        let intake_open =
            dec.buffered() <= cfg.max_frame_len + crate::proto::HEADER_LEN && !closing;
        match if intake_open {
            stream.read(&mut read_buf)
        } else {
            Err(ErrorKind::WouldBlock.into())
        } {
            Ok(0) => {
                disconnect(shared, &pending);
                return;
            }
            Ok(n) => {
                shared.stats.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                dec.extend(&read_buf[..n]);
                last_rx_progress = Instant::now();
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                disconnect(shared, &pending);
                return;
            }
        }

        // 4. Dispatch at most one complete frame per iteration, only
        //    when the previous response has fully left the buffer.
        if pending.is_none() && out.is_empty() && !closing {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    progressed = true;
                    shared.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
                    match dispatch(shared, frame, &mut out) {
                        Dispatch::Continue => {}
                        Dispatch::InFlight(p) => pending = Some(p),
                        Dispatch::Close => closing = true,
                    }
                }
                Ok(None) => {
                    // Half-open frame with no progress: slow-loris.
                    if dec.mid_frame() && last_rx_progress.elapsed() > cfg.partial_frame_timeout {
                        shared
                            .stats
                            .slow_loris_closed
                            .fetch_add(1, Ordering::Relaxed);
                        disconnect(shared, &pending);
                        return;
                    }
                }
                Err(e) => {
                    shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                    out.push(encode_frame(
                        FrameType::Error,
                        &encode_error(ErrorCode::Proto, 0, &e.to_string()),
                    ));
                    closing = true;
                    progressed = true;
                }
            }
        }

        // 5. Drain: once the in-flight query (if any) has answered and
        //    the response is flushed, close. Past the drain deadline,
        //    cancel and close regardless.
        if shared.is_draining() {
            if pending.is_none() && out.is_empty() {
                return;
            }
            if shared.drain_expired() {
                disconnect(shared, &pending);
                return;
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Cancels the in-flight query (if any) because its connection is gone.
fn disconnect(shared: &Arc<Shared>, pending: &Option<Pending>) {
    if let Some(p) = pending {
        p.ctl.cancel();
        shared
            .stats
            .disconnect_cancels
            .fetch_add(1, Ordering::Relaxed);
    }
}

enum Dispatch {
    Continue,
    InFlight(Pending),
    Close,
}

/// Handles one complete, well-formed frame from the client.
fn dispatch(shared: &Arc<Shared>, frame: Frame, out: &mut WriteBuf) -> Dispatch {
    match frame.kind {
        FrameType::Ping => {
            out.push(encode_frame(FrameType::Pong, &[]));
            Dispatch::Continue
        }
        FrameType::Query => {
            let sql = match std::str::from_utf8(&frame.payload) {
                Ok(s) => s.to_string(),
                Err(_) => {
                    shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                    out.push(encode_frame(
                        FrameType::Error,
                        &encode_error(ErrorCode::Proto, 0, "query payload is not UTF-8"),
                    ));
                    return Dispatch::Close;
                }
            };
            shared.stats.queries_rx.fetch_add(1, Ordering::Relaxed);
            let ctl = match shared.cfg.admission.default_deadline {
                Some(d) => CancellationToken::with_timeout(d),
                None => CancellationToken::new(),
            };
            let (tx, rx) = channel();
            match shared.pool.submit(Job {
                sql,
                ctl: ctl.clone(),
                reply: tx,
            }) {
                Ok(()) => Dispatch::InFlight(Pending { rx, ctl }),
                Err(e) => {
                    // Shed: fail fast with the typed overload frame; the
                    // connection stays open so the client can retry
                    // after backing off.
                    out.push(encode_frame(FrameType::Error, &encode_core_error(&e)));
                    Dispatch::Continue
                }
            }
        }
        // Server-to-client frame types are violations coming *from* a
        // client.
        FrameType::Result | FrameType::Error | FrameType::Pong => {
            shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            out.push(encode_frame(
                FrameType::Error,
                &encode_error(ErrorCode::Proto, 0, "client sent a server-only frame type"),
            ));
            Dispatch::Close
        }
    }
}
