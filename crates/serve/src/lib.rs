//! # etsqp-serve — the network query service
//!
//! Puts the [`IotDb`] engine behind a TCP service speaking a
//! length-prefixed binary protocol, turning "heavy concurrent traffic"
//! from a benchmark flag into a real operating regime. The design is
//! robustness-first (DESIGN.md §15):
//!
//! * [`proto`] — the wire-frame grammar and its hostile-input-safe
//!   parsers (fuzzed as the `proto` target, corpus-replayed forever);
//! * [`admission`] — bounded in-flight execution + bounded wait queue;
//!   the overload policy is *shed fast with a typed
//!   [`Overloaded`](etsqp_core::Error::Overloaded) carrying a
//!   retry-after hint* rather than stacking latency;
//! * [`conn`] — per-connection backpressure: a slow reader stalls only
//!   its own connection, a half-open frame (slow-loris) is bounded, and
//!   a disconnect mid-query cancels the running query so pool workers
//!   are reclaimed;
//! * [`server`] — the thin non-blocking accept loop, the connection
//!   cap, stats, and the graceful drain protocol;
//! * [`client`] — a small blocking client (bench, chaos suite, CLI).
//!
//! ```no_run
//! use std::sync::Arc;
//! use etsqp_core::engine::{EngineOptions, IotDb};
//! use etsqp_serve::{client::{Client, Response}, server, ServeConfig};
//!
//! let db = Arc::new(IotDb::new(EngineOptions::default()));
//! let handle = server::start(db, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut c = Client::connect(handle.addr()).unwrap();
//! match c.query("SELECT COUNT(s) FROM s").unwrap() {
//!     Response::Rows(r) => println!("{:?}", r.rows),
//!     Response::ServerError(e) => eprintln!("server: {e}"),
//! }
//! handle.shutdown();
//! ```
//!
//! [`IotDb`]: etsqp_core::engine::IotDb

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod conn;
pub mod proto;
pub mod server;

pub use admission::AdmissionConfig;
pub use server::{ServeConfig, ServerHandle, StatsSnapshot};
