//! Admission control: a bounded in-flight-query pool behind a bounded
//! wait queue, with queue-depth shedding.
//!
//! The shape follows the classic admission-control argument: once a
//! server is saturated, accepting more work does not raise throughput —
//! it only stacks latency onto every queued request until clients time
//! out and retry, which is the overload death spiral. So capacity is
//! two explicit bounds:
//!
//! * **in-flight bound** — at most `max_inflight` queries execute
//!   concurrently (one runner thread each; the runner thread is also
//!   the thread that *helps* the shared work-stealing pool execute its
//!   morsels, so the bound caps engine concurrency too);
//! * **queue bound** — at most `max_queue` admitted-but-waiting
//!   queries. A submission that finds the total capacity
//!   (`inflight + queued >= max_inflight + max_queue`) exhausted is
//!   **shed immediately** with [`etsqp_core::Error::Overloaded`]
//!   carrying a retry-after hint derived from the observed service
//!   rate (`queued+inflight` work ahead × EWMA query latency ÷
//!   runners). The bound is on the *sum*, not the queue depth alone:
//!   `max_queue = 0` means "never wait, but do run" — an idle runner
//!   still admits — and both counters move under one lock, so the
//!   check cannot race a runner's dequeue.
//!
//! Shedding is strictly cheaper than serving: no SQL parse, no plan,
//! no pool contact — a shed request costs one mutex acquisition and
//! one small response frame, which is what keeps the accepted-query
//! p99 flat under a 2× offered overload (`BENCH_serve.json`).
//!
//! Drain: [`RunnerPool::drain`] stops admission (late submissions shed
//! with the drain hint), lets the queue empty and every in-flight query
//! finish, then joins the runners. A drain deadline cancels stragglers
//! through their [`CancellationToken`]s so shutdown is bounded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::cancel::CancellationToken;
use etsqp_core::engine::IotDb;
use etsqp_core::plan::QueryResult;
use etsqp_core::Error;
use parking_lot::{Condvar, Mutex};

/// Admission bounds and deadlines (see crate docs for the policy).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum concurrently executing queries (runner threads).
    pub max_inflight: usize,
    /// Maximum admitted-but-waiting queries before shedding.
    pub max_queue: usize,
    /// Per-query deadline applied at admission (None = unbounded).
    pub default_deadline: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_queue: 64,
            default_deadline: None,
        }
    }
}

/// One admitted query: the SQL, its cancellation token, and where the
/// outcome goes (the submitting connection's completion channel).
pub struct Job {
    /// Raw SQL text.
    pub sql: String,
    /// Token the owning connection can fire on disconnect.
    pub ctl: CancellationToken,
    /// Completion channel back to the connection.
    pub reply: Sender<Outcome>,
}

/// A finished query, successful or not.
pub struct Outcome {
    /// Engine result (rows or typed error).
    pub result: Result<QueryResult, Error>,
    /// Wall-clock service time (queue wait excluded).
    pub service: Duration,
}

/// Monotonic counters for observability and the chaos suite.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Queries admitted (queued or started).
    pub admitted: AtomicU64,
    /// Queries shed with `Overloaded` at submission.
    pub shed: AtomicU64,
    /// Queries that finished with rows.
    pub done_ok: AtomicU64,
    /// Queries that finished with a typed error.
    pub done_err: AtomicU64,
    /// Of `done_err`: cancelled (connection gone mid-query).
    pub cancelled: AtomicU64,
    /// Of `done_err`: deadline expired.
    pub timeouts: AtomicU64,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    inflight: usize,
    /// EWMA of service time in microseconds (α = 1/8); seeded at 1 ms
    /// so the first retry hints are sane before any query completes.
    ewma_us: u64,
    draining: bool,
}

/// The admission gate plus its runner threads.
pub struct RunnerPool {
    shared: Arc<Shared>,
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Shared {
    cfg: AdmissionConfig,
    db: Arc<IotDb>,
    queue: Mutex<Queue>,
    work: Condvar,
    stats: AdmissionStats,
}

impl RunnerPool {
    /// Starts `cfg.max_inflight` runner threads over `db`.
    pub fn start(db: Arc<IotDb>, cfg: AdmissionConfig) -> RunnerPool {
        let shared = Arc::new(Shared {
            cfg,
            db,
            queue: Mutex::new(Queue {
                ewma_us: 1_000,
                ..Queue::default()
            }),
            work: Condvar::new(),
            stats: AdmissionStats::default(),
        });
        let runners = (0..cfg.max_inflight.max(1))
            .filter_map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("etsqp-runner-{i}"))
                    .spawn(move || runner_loop(&sh))
                    // Thread spawning fails only on resource exhaustion at
                    // startup; surface it as a smaller pool rather than a
                    // panic (the pool still works with fewer runners).
                    .ok()
            })
            .collect();
        RunnerPool {
            shared,
            runners: Mutex::new(runners),
        }
    }

    /// Admission decision for one query. `Ok(())` means the job was
    /// queued (its outcome will arrive on `job.reply`); `Err` is the
    /// typed shed error to send the client immediately.
    pub fn submit(&self, job: Job) -> Result<(), Error> {
        let sh = &self.shared;
        let mut q = sh.queue.lock();
        if q.draining {
            sh.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Overloaded {
                retry_after_ms: 1_000,
            });
        }
        if q.jobs.len() + q.inflight >= sh.cfg.max_queue + sh.cfg.max_inflight.max(1) {
            sh.stats.shed.fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = retry_hint(&q, &sh.cfg);
            return Err(Error::Overloaded { retry_after_ms });
        }
        sh.stats.admitted.fetch_add(1, Ordering::Relaxed);
        q.jobs.push_back(job);
        drop(q);
        sh.work.notify_one();
        Ok(())
    }

    /// Counters (shared with the server's stats surface).
    pub fn stats(&self) -> &AdmissionStats {
        &self.shared.stats
    }

    /// Queries currently executing or queued (an instantaneous gauge).
    pub fn load(&self) -> (usize, usize) {
        let q = self.shared.queue.lock();
        (q.inflight, q.jobs.len())
    }

    /// Graceful drain: stop admitting, let queued + in-flight work
    /// finish, cancel whatever is still running past `deadline`, then
    /// join every runner thread. Idempotent: later calls find no
    /// runners left to join.
    pub fn drain(&self, deadline: Duration) {
        let sh = &self.shared;
        let until = Instant::now() + deadline;
        {
            let mut q = sh.queue.lock();
            q.draining = true;
        }
        self.shared.work.notify_all();
        // Wait for the queue to empty and in-flight work to land.
        loop {
            {
                let q = sh.queue.lock();
                if q.jobs.is_empty() && q.inflight == 0 {
                    break;
                }
            }
            if Instant::now() >= until {
                // Past the drain deadline: cancel stragglers. Queued
                // jobs are popped by runners (who see `draining` +
                // fired tokens and fail them fast); running ones stop
                // at their next morsel boundary.
                let q = sh.queue.lock();
                for job in q.jobs.iter() {
                    job.ctl.cancel();
                }
                drop(q);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = self.runners.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Work ahead of a newly shed query, priced at the EWMA service time.
fn retry_hint(q: &Queue, cfg: &AdmissionConfig) -> u64 {
    let ahead = (q.jobs.len() + q.inflight) as u64;
    let runners = cfg.max_inflight.max(1) as u64;
    let est_us = q.ewma_us.saturating_mul(ahead) / runners;
    (est_us / 1_000).clamp(1, 30_000)
}

fn runner_loop(sh: &Shared) {
    loop {
        let job = {
            let mut q = sh.queue.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.inflight += 1;
                    break job;
                }
                if q.draining {
                    return;
                }
                sh.work.wait(&mut q);
            }
        };
        let start = Instant::now();
        let result = sh.db.query_ctl(&job.sql, &job.ctl);
        let service = start.elapsed();
        match &result {
            Ok(_) => {
                sh.stats.done_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(Error::Cancelled) => {
                sh.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                sh.stats.done_err.fetch_add(1, Ordering::Relaxed);
            }
            Err(Error::Timeout) => {
                sh.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                sh.stats.done_err.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                sh.stats.done_err.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let mut q = sh.queue.lock();
            q.inflight -= 1;
            // α = 1/8 EWMA over successful service times only — errors
            // (especially instant sheds/cancels) would drag the
            // estimate toward zero and produce useless retry hints.
            if result.is_ok() {
                let us = u64::try_from(service.as_micros()).unwrap_or(u64::MAX);
                q.ewma_us = q.ewma_us - q.ewma_us / 8 + us / 8;
            }
        }
        // The receiver may be gone (connection closed mid-query) — that
        // is fine, the outcome is simply dropped.
        let _ = job.reply.send(Outcome { result, service });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_core::engine::EngineOptions;
    use std::sync::mpsc::channel;

    fn tiny_db() -> Arc<IotDb> {
        let db = IotDb::new(EngineOptions::default());
        db.create_series("s").unwrap();
        for i in 0..1000i64 {
            db.append("s", i * 10, i % 7).unwrap();
        }
        db.flush().unwrap();
        Arc::new(db)
    }

    #[test]
    fn admitted_query_completes() {
        let pool = RunnerPool::start(
            tiny_db(),
            AdmissionConfig {
                max_inflight: 2,
                max_queue: 4,
                default_deadline: None,
            },
        );
        let (tx, rx) = channel();
        pool.submit(Job {
            sql: "SELECT SUM(s) FROM s".into(),
            ctl: CancellationToken::none(),
            reply: tx,
        })
        .unwrap();
        let out = rx.recv().unwrap();
        assert!(out.result.is_ok());
        assert_eq!(pool.stats().done_ok.load(Ordering::Relaxed), 1);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        let db = tiny_db();
        let pool = RunnerPool::start(
            Arc::clone(&db),
            AdmissionConfig {
                max_inflight: 1,
                max_queue: 1,
                default_deadline: None,
            },
        );
        // Occupy the single runner with a query that blocks on a token
        // we never fire… cannot block the engine that way, so instead
        // flood the queue faster than the runner can drain: submit many
        // jobs and count sheds.
        let (tx, rx) = channel();
        let mut shed = 0usize;
        for _ in 0..64 {
            match pool.submit(Job {
                sql: "SELECT SUM(s) FROM s WHERE s > 2".into(),
                ctl: CancellationToken::none(),
                reply: tx.clone(),
            }) {
                Ok(()) => {}
                Err(Error::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms >= 1);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        drop(tx);
        let admitted: Vec<Outcome> = rx.iter().collect();
        assert_eq!(admitted.len() + shed, 64);
        assert!(admitted.iter().all(|o| o.result.is_ok()));
        assert_eq!(pool.stats().shed.load(Ordering::Relaxed), shed as u64);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn zero_queue_still_admits_idle_runners() {
        // max_queue = 0 means "never wait", not "never run": with every
        // runner idle a submission must be admitted, because it starts
        // immediately. The shed bound is inflight + queued against
        // max_inflight + max_queue, not queue depth alone.
        let pool = RunnerPool::start(
            tiny_db(),
            AdmissionConfig {
                max_inflight: 1,
                max_queue: 0,
                default_deadline: None,
            },
        );
        let (tx, rx) = channel();
        pool.submit(Job {
            sql: "SELECT SUM(s) FROM s".into(),
            ctl: CancellationToken::none(),
            reply: tx,
        })
        .expect("idle runner must admit even with a zero-length queue");
        let out = rx.recv().unwrap();
        assert!(out.result.is_ok());
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn drain_rejects_new_and_finishes_queued() {
        let pool = RunnerPool::start(
            tiny_db(),
            AdmissionConfig {
                max_inflight: 1,
                max_queue: 8,
                default_deadline: None,
            },
        );
        let (tx, rx) = channel();
        for _ in 0..4 {
            let _ = pool.submit(Job {
                sql: "SELECT COUNT(s) FROM s".into(),
                ctl: CancellationToken::none(),
                reply: tx.clone(),
            });
        }
        let admitted = pool.stats().admitted.load(Ordering::Relaxed);
        pool.drain(Duration::from_secs(10));
        drop(tx);
        let outcomes: Vec<Outcome> = rx.iter().collect();
        assert_eq!(outcomes.len() as u64, admitted, "drain must flush queue");
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
    }
}
