//! The accept loop, connection registry, stats surface, and graceful
//! drain.
//!
//! The accept loop is deliberately thin: a non-blocking listener polled
//! on its own thread, whose only decisions are (a) are we draining?
//! drop the socket, (b) is the connection cap reached? send one
//! `Overloaded` farewell frame and close, (c) otherwise register the
//! connection and hand the socket to its handler thread
//! ([`crate::conn`]). Everything stateful — admission, backpressure,
//! cancellation — lives behind those handlers, so the accept path can
//! never block on a misbehaving peer.
//!
//! Shutdown protocol ([`ServerHandle::shutdown`]):
//!
//! 1. stop accepting (drain flag; the accept thread exits);
//! 2. the admission pool stops admitting — late queries shed typed;
//! 3. queued and in-flight queries finish (or are cancelled at the
//!    drain deadline) and their responses are flushed;
//! 4. connection handlers close once idle; the handle joins every
//!    thread and returns the final stats snapshot.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::engine::IotDb;
use parking_lot::Mutex;

use crate::admission::{AdmissionConfig, RunnerPool};
use crate::proto::{encode_error, encode_frame, ErrorCode, FrameType, DEFAULT_MAX_FRAME_LEN};

/// Server tuning knobs. Defaults are production-shaped: bounded
/// everything, generous enough for interactive use.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission bounds (in-flight, queue, default deadline).
    pub admission: AdmissionConfig,
    /// Connection cap; past it, new sockets get an `Overloaded`
    /// farewell frame and are closed.
    pub max_connections: usize,
    /// Frame payload cap, both directions.
    pub max_frame_len: usize,
    /// How long a half-open request frame may sit without progress
    /// before the connection is closed (slow-loris bound).
    pub partial_frame_timeout: Duration,
    /// How long a peer may refuse to drain its responses before the
    /// connection is closed (slow-reader bound).
    pub write_stall_timeout: Duration,
    /// Bound on the graceful-drain phase of shutdown; in-flight queries
    /// still running past it are cancelled.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionConfig::default(),
            max_connections: 2048,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            partial_frame_timeout: Duration::from_secs(2),
            write_stall_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic server counters (connection + protocol level; query-level
/// counters live on [`crate::admission::AdmissionStats`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and registered.
    pub conns_accepted: AtomicU64,
    /// Connections refused at the cap (got an `Overloaded` farewell).
    pub conns_refused: AtomicU64,
    /// Complete frames received from clients.
    pub frames_rx: AtomicU64,
    /// Raw bytes received from clients.
    pub bytes_rx: AtomicU64,
    /// Query frames received.
    pub queries_rx: AtomicU64,
    /// Protocol violations observed (bad version/type/length/payload).
    pub proto_errors: AtomicU64,
    /// Connections closed by the half-open-frame (slow-loris) bound.
    pub slow_loris_closed: AtomicU64,
    /// In-flight queries cancelled because their connection vanished.
    pub disconnect_cancels: AtomicU64,
    /// Results that exceeded the frame cap and were errored instead.
    pub oversized_results: AtomicU64,
}

/// A point-in-time copy of every counter, for tests and reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Connections accepted and registered.
    pub conns_accepted: u64,
    /// Connections refused at the cap.
    pub conns_refused: u64,
    /// Complete frames received.
    pub frames_rx: u64,
    /// Raw bytes received.
    pub bytes_rx: u64,
    /// Query frames received.
    pub queries_rx: u64,
    /// Protocol violations.
    pub proto_errors: u64,
    /// Slow-loris closures.
    pub slow_loris_closed: u64,
    /// Disconnect-triggered query cancellations.
    pub disconnect_cancels: u64,
    /// Oversized results errored.
    pub oversized_results: u64,
    /// Queries admitted by the gate.
    pub admitted: u64,
    /// Queries shed with `Overloaded`.
    pub shed: u64,
    /// Queries finished successfully.
    pub done_ok: u64,
    /// Queries finished with a typed error.
    pub done_err: u64,
    /// Finished-with-error queries that were cancellations.
    pub cancelled: u64,
    /// Finished-with-error queries that were deadline expiries.
    pub timeouts: u64,
}

/// State shared between the accept loop, connection handlers, and the
/// handle. Crate-visible: connection handlers live in [`crate::conn`].
pub struct Shared {
    /// Tuning knobs.
    pub cfg: ServeConfig,
    /// The admission gate + runner threads.
    pub pool: RunnerPool,
    /// Connection/protocol counters.
    pub stats: ServerStats,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
}

impl Shared {
    /// Whether shutdown has begun (handlers finish and close).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Whether the graceful-drain deadline has passed.
    pub fn drain_expired(&self) -> bool {
        matches!(*self.drain_deadline.lock(), Some(d) if Instant::now() >= d)
    }

    fn snapshot(&self) -> StatsSnapshot {
        let s = &self.stats;
        let a = self.pool.stats();
        StatsSnapshot {
            conns_accepted: s.conns_accepted.load(Ordering::Relaxed),
            conns_refused: s.conns_refused.load(Ordering::Relaxed),
            frames_rx: s.frames_rx.load(Ordering::Relaxed),
            bytes_rx: s.bytes_rx.load(Ordering::Relaxed),
            queries_rx: s.queries_rx.load(Ordering::Relaxed),
            proto_errors: s.proto_errors.load(Ordering::Relaxed),
            slow_loris_closed: s.slow_loris_closed.load(Ordering::Relaxed),
            disconnect_cancels: s.disconnect_cancels.load(Ordering::Relaxed),
            oversized_results: s.oversized_results.load(Ordering::Relaxed),
            admitted: a.admitted.load(Ordering::Relaxed),
            shed: a.shed.load(Ordering::Relaxed),
            done_ok: a.done_ok.load(Ordering::Relaxed),
            done_err: a.done_err.load(Ordering::Relaxed),
            cancelled: a.cancelled.load(Ordering::Relaxed),
            timeouts: a.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] for the graceful drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of every counter.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Instantaneous (inflight, queued) gauge.
    pub fn load(&self) -> (usize, usize) {
        self.shared.pool.load()
    }

    /// Graceful drain: stop accepting, shed late arrivals, finish (or
    /// cancel at the drain deadline) in-flight queries, flush and close
    /// every connection, join every thread. Returns the final stats.
    pub fn shutdown(mut self) -> StatsSnapshot {
        {
            let mut d = self.shared.drain_deadline.lock();
            *d = Some(Instant::now() + self.shared.cfg.drain_timeout);
        }
        self.shared.draining.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drain the admission pool first: queued/in-flight queries land
        // their outcomes on the connections' channels…
        self.shared.pool.drain(self.shared.cfg.drain_timeout);
        // …then the handlers flush those responses and exit.
        let handles: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.shared.snapshot()
    }
}

/// Binds `addr` and starts the accept loop over `db`.
pub fn start(
    db: Arc<IotDb>,
    addr: impl ToSocketAddrs,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cfg,
        pool: RunnerPool::start(db, cfg.admission),
        stats: ServerStats::default(),
        draining: AtomicBool::new(false),
        drain_deadline: Mutex::new(None),
    });
    let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_conns = Arc::clone(&conn_threads);
    let accept_thread = std::thread::Builder::new()
        .name("etsqp-accept".into())
        .spawn(move || accept_loop(&accept_shared, &listener, &accept_conns))
        .map_err(std::io::Error::other)?;

    Ok(ServerHandle {
        shared,
        addr: local,
        accept_thread: Some(accept_thread),
        conn_threads,
    })
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.is_draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Opportunistically reap finished handler threads so the
                // registry does not grow with connection churn.
                conn_threads.lock().retain(|h| !h.is_finished());
                let active = conn_threads.lock().len();
                if active >= shared.cfg.max_connections {
                    refuse(shared, stream);
                    continue;
                }
                shared.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("etsqp-conn".into())
                    .spawn(move || crate::conn::handle(&conn_shared, stream));
                match spawned {
                    Ok(h) => conn_threads.lock().push(h),
                    // Out of threads: treat like the connection cap.
                    Err(_) => {
                        shared.stats.conns_refused.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept errors (EMFILE under pressure…) —
                // back off instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Sends a best-effort `Overloaded` farewell on a refused connection.
fn refuse(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.stats.conns_refused.fetch_add(1, Ordering::Relaxed);
    let frame = encode_frame(
        FrameType::Error,
        &encode_error(
            ErrorCode::Overloaded,
            1_000,
            "connection limit reached; retry later",
        ),
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&frame);
}
