//! The wire protocol: length-prefixed binary frames.
//!
//! Frame grammar (all integers little-endian):
//!
//! ```text
//! frame   := version:u8  type:u8  len:u32  payload:len bytes
//! version := 0x01
//! type    := 0x01 Query   (client → server; payload = SQL, UTF-8)
//!          | 0x02 Ping    (client → server; empty payload)
//!          | 0x81 Result  (server → client; payload = result set)
//!          | 0x82 Error   (server → client; payload = typed error)
//!          | 0x83 Pong    (server → client; empty payload)
//!
//! result  := elapsed_us:u64  ncols:u16  col*ncols  nrows:u32  row*nrows
//! col     := len:u16  name:len bytes (UTF-8)
//! row     := cell*ncols
//! cell    := 0x00                      (NULL)
//!          | 0x01 value:i64            (integer)
//!          | 0x02 value:f64 (IEEE 754) (float)
//!
//! error   := code:u8  retry_after_ms:u32  len:u16  message:len bytes
//! ```
//!
//! This module is an untrusted-input surface on both sides (hostile
//! clients attack the server's parser, a hostile server attacks the
//! client's), so every parse path returns a typed [`ProtoError`] and
//! never panics — enforced statically by the `no-panic-paths` lint and
//! dynamically by the `proto` fuzz target and the committed corpus
//! replayed in `tests/corruption.rs`.
//!
//! Design constraints the grammar encodes:
//!
//! * the 4-byte length prefix is validated against a hard cap *before*
//!   any allocation, so a hostile `len = u32::MAX` cannot balloon
//!   memory ([`FrameDecoder`] buffers at most `max_frame_len` +
//!   [`HEADER_LEN`] bytes per connection);
//! * the version byte leads, so a speaker of a future protocol is
//!   rejected on the first byte rather than misparsed;
//! * error frames carry the retry-after hint in-band, so an
//!   [`ErrorCode::Overloaded`] response is actionable without any
//!   out-of-band channel.

use etsqp_core::plan::{QueryResult, Value};
use etsqp_core::Error as CoreError;

/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Bytes in a frame header: version + type + u32 length.
pub const HEADER_LEN: usize = 6;

/// Default cap on a frame payload (requests and responses).
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Frame type tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// SQL query request.
    Query,
    /// Liveness probe.
    Ping,
    /// Query result set.
    Result,
    /// Typed error response.
    Error,
    /// Liveness reply.
    Pong,
}

impl FrameType {
    fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Query),
            0x02 => Some(FrameType::Ping),
            0x81 => Some(FrameType::Result),
            0x82 => Some(FrameType::Error),
            0x83 => Some(FrameType::Pong),
            _ => None,
        }
    }

    fn byte(self) -> u8 {
        match self {
            FrameType::Query => 0x01,
            FrameType::Ping => 0x02,
            FrameType::Result => 0x81,
            FrameType::Error => 0x82,
            FrameType::Pong => 0x83,
        }
    }
}

/// A complete frame lifted off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameType,
    /// The raw payload bytes (interpreted per [`Frame::kind`]).
    pub payload: Vec<u8>,
}

/// Typed parse failures; every variant is a protocol violation by the
/// peer (the connection is closed after reporting it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// First byte was not [`VERSION`].
    BadVersion(u8),
    /// Unknown frame-type byte.
    BadType(u8),
    /// Declared payload length exceeds the negotiated cap.
    Oversized {
        /// Length the header declared.
        declared: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The payload did not parse as its frame type demands.
    BadPayload(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            ProtoError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Incremental frame decoder with a bounded buffer.
///
/// Feed raw socket bytes with [`FrameDecoder::extend`], pull complete
/// frames with [`FrameDecoder::next_frame`]. The internal buffer never
/// holds more than one maximum-size frame plus the following header, so
/// a connection's parse state is bounded regardless of client behaviour.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_frame_len: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame_len` as the payload cap.
    pub fn new(max_frame_len: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max_frame_len,
        }
    }

    /// Appends raw bytes read from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a frame header has arrived but its payload is still
    /// incomplete — the "half-open frame" state a slow-loris client
    /// parks a connection in.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
            && (self.buf.len() < HEADER_LEN || {
                let need = header_payload_len(&self.buf);
                matches!(need, Some(n) if self.buf.len() < HEADER_LEN + n)
            })
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed, or a typed error on a protocol violation (the caller
    /// should close the connection; the decoder state is poisoned in
    /// the sense that resynchronization is not attempted).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf[0] != VERSION {
            return Err(ProtoError::BadVersion(self.buf[0]));
        }
        if self.buf.len() < 2 {
            return Ok(None);
        }
        let kind = FrameType::from_byte(self.buf[1]).ok_or(ProtoError::BadType(self.buf[1]))?;
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        // Validate the declared length against the cap *before* waiting
        // for (or allocating) the payload.
        let declared = u32::from_le_bytes([self.buf[2], self.buf[3], self.buf[4], self.buf[5]]);
        let len = declared as usize;
        if len > self.max_frame_len {
            return Err(ProtoError::Oversized {
                declared: declared as u64,
                max: self.max_frame_len as u64,
            });
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(Frame { kind, payload }))
    }
}

/// The payload length a buffered header declares, if enough bytes are
/// present to read it.
fn header_payload_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    Some(u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize)
}

/// Encodes one frame (header + payload) into a fresh buffer.
pub fn encode_frame(kind: FrameType, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(VERSION);
    out.push(kind.byte());
    // Payloads are produced by this process and bounded well below
    // u32::MAX by the frame cap; saturate rather than wrap if a caller
    // ever exceeds it (the peer then rejects the frame as truncated,
    // which is the safe failure).
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Error payloads
// ---------------------------------------------------------------------

/// Error classes on the wire. The mapping from engine errors is total:
/// every [`CoreError`] lands in exactly one code, so a client can react
/// (back off, re-submit, give up) without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// SQL text rejected by the parser.
    Sql = 1,
    /// Logical plan not executable (unknown series, bad window…).
    Plan = 2,
    /// Corrupt or hostile input rejected by a checksum/preflight.
    Corrupt = 3,
    /// Per-query deadline exceeded.
    Timeout = 4,
    /// Query cancelled (e.g. its connection went away mid-execution).
    Cancelled = 5,
    /// Shed at admission; `retry_after_ms` is the back-off hint.
    Overloaded = 6,
    /// A pool worker failed while executing the query.
    Worker = 7,
    /// Protocol violation by the client (reported before closing).
    Proto = 8,
    /// Anything else (aggregate overflow, verifier rejection…).
    Internal = 9,
}

impl ErrorCode {
    /// Parses a code byte from the wire.
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Sql),
            2 => Some(ErrorCode::Plan),
            3 => Some(ErrorCode::Corrupt),
            4 => Some(ErrorCode::Timeout),
            5 => Some(ErrorCode::Cancelled),
            6 => Some(ErrorCode::Overloaded),
            7 => Some(ErrorCode::Worker),
            8 => Some(ErrorCode::Proto),
            9 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Classifies an engine error.
    pub fn from_core(e: &CoreError) -> ErrorCode {
        match e {
            _ if e.is_corrupt() => ErrorCode::Corrupt,
            CoreError::Sql(_) => ErrorCode::Sql,
            CoreError::Plan(_) => ErrorCode::Plan,
            CoreError::Timeout => ErrorCode::Timeout,
            CoreError::Cancelled => ErrorCode::Cancelled,
            CoreError::Overloaded { .. } => ErrorCode::Overloaded,
            CoreError::Worker(_) => ErrorCode::Worker,
            _ => ErrorCode::Internal,
        }
    }
}

/// A decoded error frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Error class.
    pub code: ErrorCode,
    /// Back-off hint (0 when not applicable).
    pub retry_after_ms: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if self.retry_after_ms > 0 {
            write!(f, " (retry after {} ms)", self.retry_after_ms)?;
        }
        Ok(())
    }
}

/// Serializes an error payload.
pub fn encode_error(code: ErrorCode, retry_after_ms: u32, message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let take = msg.len().min(u16::MAX as usize);
    // A multi-byte UTF-8 sequence may straddle the cap; back up to a
    // boundary so the truncated message stays valid UTF-8.
    let mut cut = take;
    while cut > 0 && !message.is_char_boundary(cut) {
        cut -= 1;
    }
    let mut out = Vec::with_capacity(7 + cut);
    out.push(code as u8);
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    let len = u16::try_from(cut).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&msg[..cut]);
    out
}

/// Serializes an engine error, deriving code and retry hint.
pub fn encode_core_error(e: &CoreError) -> Vec<u8> {
    let retry = match e {
        CoreError::Overloaded { retry_after_ms } => {
            u32::try_from(*retry_after_ms).unwrap_or(u32::MAX)
        }
        _ => 0,
    };
    encode_error(ErrorCode::from_core(e), retry, &e.to_string())
}

/// Parses an error payload.
pub fn decode_error(payload: &[u8]) -> Result<WireError, ProtoError> {
    if payload.len() < 7 {
        return Err(ProtoError::BadPayload("error frame shorter than 7 bytes"));
    }
    let code = ErrorCode::from_byte(payload[0])
        .ok_or(ProtoError::BadPayload("unknown error code byte"))?;
    let retry_after_ms = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
    let len = u16::from_le_bytes([payload[5], payload[6]]) as usize;
    let rest = &payload[7..];
    if rest.len() != len {
        return Err(ProtoError::BadPayload("error message length mismatch"));
    }
    let message = std::str::from_utf8(rest)
        .map_err(|_| ProtoError::BadPayload("error message is not UTF-8"))?
        .to_string();
    Ok(WireError {
        code,
        retry_after_ms,
        message,
    })
}

// ---------------------------------------------------------------------
// Result payloads
// ---------------------------------------------------------------------

/// A decoded result frame: the row data of a [`QueryResult`] plus the
/// server-side execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Server-side execution time in microseconds.
    pub elapsed_us: u64,
}

impl WireResult {
    /// Canonical re-serialization, byte-identical to what
    /// [`encode_result`] produces for the same data. The fuzzer and the
    /// corpus replay use it for the accepted-implies-round-trip check.
    pub fn encode(&self) -> Vec<u8> {
        encode_result_parts(&self.columns, &self.rows, self.elapsed_us)
    }
}

/// Serializes a query result payload.
pub fn encode_result(r: &QueryResult) -> Vec<u8> {
    let elapsed_us = u64::try_from(r.elapsed.as_micros()).unwrap_or(u64::MAX);
    encode_result_parts(&r.columns, &r.rows, elapsed_us)
}

fn encode_result_parts(columns: &[String], rows: &[Vec<Value>], elapsed_us: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&elapsed_us.to_le_bytes());
    let ncols = u16::try_from(columns.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&ncols.to_le_bytes());
    for c in columns.iter().take(ncols as usize) {
        let b = c.as_bytes();
        let take = b.len().min(u16::MAX as usize);
        let mut cut = take;
        while cut > 0 && !c.is_char_boundary(cut) {
            cut -= 1;
        }
        let len = u16::try_from(cut).unwrap_or(u16::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&b[..cut]);
    }
    let nrows = u32::try_from(rows.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&nrows.to_le_bytes());
    for row in rows.iter().take(nrows as usize) {
        for i in 0..ncols as usize {
            match row.get(i) {
                None | Some(Value::Null) => out.push(0),
                Some(Value::Int(v)) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Some(Value::Float(v)) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    out
}

/// A bounds-checked little-endian reader over a result payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ProtoError::BadPayload("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtoError::BadPayload("payload truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

/// Parses a result payload. Row and column counts are validated against
/// the bytes actually present before any allocation is sized from them,
/// so a hostile `nrows = u32::MAX` cannot balloon memory.
pub fn decode_result(payload: &[u8]) -> Result<WireResult, ProtoError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let elapsed_us = r.u64()?;
    let ncols = r.u16()? as usize;
    // Each column needs at least its 2-byte length on the wire.
    if ncols > payload.len() / 2 {
        return Err(ProtoError::BadPayload("column count exceeds payload"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| ProtoError::BadPayload("column name is not UTF-8"))?;
        columns.push(name.to_string());
    }
    let nrows = r.u32()? as usize;
    // Every cell is at least one tag byte; reject counts the remaining
    // bytes cannot possibly satisfy. A zero-column result must declare
    // zero rows — its rows consume no payload at all, so any nonzero
    // count would drive an unbounded decode loop (fuzzer-found).
    let remaining = payload.len() - r.pos;
    if ncols == 0 && nrows != 0 {
        return Err(ProtoError::BadPayload("rows declared without columns"));
    }
    if ncols != 0 && nrows > remaining / ncols {
        return Err(ProtoError::BadPayload("row count exceeds payload"));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let tag = r.take(1)?[0];
            row.push(match tag {
                0 => Value::Null,
                1 => {
                    let b = r.take(8)?;
                    let mut a = [0u8; 8];
                    a.copy_from_slice(b);
                    Value::Int(i64::from_le_bytes(a))
                }
                2 => {
                    let b = r.take(8)?;
                    let mut a = [0u8; 8];
                    a.copy_from_slice(b);
                    Value::Float(f64::from_le_bytes(a))
                }
                _ => return Err(ProtoError::BadPayload("unknown cell tag")),
            });
        }
        rows.push(row);
    }
    if r.pos != payload.len() {
        return Err(ProtoError::BadPayload("trailing bytes after result"));
    }
    Ok(WireResult {
        columns,
        rows,
        elapsed_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_result() -> QueryResult {
        QueryResult {
            columns: vec!["time".into(), "SUM(v)".into()],
            rows: vec![
                vec![Value::Int(1000), Value::Int(42)],
                vec![Value::Int(2000), Value::Float(6.5)],
                vec![Value::Int(3000), Value::Null],
            ],
            stats: etsqp_core::exec::ExecStats::default().snapshot(),
            elapsed: Duration::from_micros(1234),
            explain: None,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let wire = encode_frame(FrameType::Query, b"SELECT 1");
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.extend(&wire);
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameType::Query);
        assert_eq!(f.payload, b"SELECT 1");
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_roundtrip_byte_at_a_time() {
        let wire = encode_frame(FrameType::Ping, &[]);
        let mut dec = FrameDecoder::new(64);
        for (i, b) in wire.iter().enumerate() {
            dec.extend(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame complete early at byte {i}");
                assert!(dec.mid_frame());
            } else {
                assert_eq!(got.unwrap().kind, FrameType::Ping);
                assert!(!dec.mid_frame());
            }
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut dec = FrameDecoder::new(64);
        dec.extend(&[0x7f, 0x01, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(ProtoError::BadVersion(0x7f)));
    }

    #[test]
    fn bad_type_rejected() {
        let mut dec = FrameDecoder::new(64);
        dec.extend(&[VERSION, 0x55, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame(), Err(ProtoError::BadType(0x55)));
    }

    #[test]
    fn oversized_frame_rejected_before_payload_arrives() {
        let mut dec = FrameDecoder::new(16);
        let mut hdr = vec![VERSION, 0x01];
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        dec.extend(&hdr);
        assert!(matches!(
            dec.next_frame(),
            Err(ProtoError::Oversized { max: 16, .. })
        ));
    }

    #[test]
    fn pipelined_frames_split_correctly() {
        let mut wire = encode_frame(FrameType::Query, b"a");
        wire.extend(encode_frame(FrameType::Query, b"bb"));
        let mut dec = FrameDecoder::new(64);
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap().payload, b"a");
        assert_eq!(dec.next_frame().unwrap().unwrap().payload, b"bb");
        assert!(dec.next_frame().unwrap().is_none());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn result_roundtrip() {
        let r = sample_result();
        let wire = encode_result(&r);
        let back = decode_result(&wire).unwrap();
        assert_eq!(back.columns, r.columns);
        assert_eq!(back.rows, r.rows);
        assert_eq!(back.elapsed_us, 1234);
    }

    #[test]
    fn result_hostile_counts_rejected() {
        let r = sample_result();
        let mut wire = encode_result(&r);
        // Splice the row count (offset 8 + 2 + cols…) — easier: splice
        // the column count at offset 8 to u16::MAX.
        wire[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode_result(&wire).is_err());
    }

    #[test]
    fn error_roundtrip() {
        let payload = encode_error(ErrorCode::Overloaded, 250, "queue full");
        let back = decode_error(&payload).unwrap();
        assert_eq!(back.code, ErrorCode::Overloaded);
        assert_eq!(back.retry_after_ms, 250);
        assert_eq!(back.message, "queue full");
    }

    #[test]
    fn core_error_mapping_is_total() {
        use etsqp_core::Error;
        let cases: Vec<(Error, ErrorCode)> = vec![
            (Error::Sql("x".into()), ErrorCode::Sql),
            (Error::Plan("x".into()), ErrorCode::Plan),
            (Error::Timeout, ErrorCode::Timeout),
            (Error::Cancelled, ErrorCode::Cancelled),
            (
                Error::Overloaded { retry_after_ms: 9 },
                ErrorCode::Overloaded,
            ),
            (Error::Worker("w".into()), ErrorCode::Worker),
            (Error::Overflow, ErrorCode::Internal),
            (Error::Decode("d"), ErrorCode::Corrupt),
        ];
        for (e, want) in cases {
            assert_eq!(ErrorCode::from_core(&e), want, "{e}");
        }
        let wire = encode_core_error(&etsqp_core::Error::Overloaded { retry_after_ms: 77 });
        let back = decode_error(&wire).unwrap();
        assert_eq!(back.retry_after_ms, 77);
    }

    #[test]
    fn result_zero_cols_nonzero_rows_rejected() {
        // Fuzzer-found DoS: ncols = 0 means rows consume no payload,
        // so a hostile nrows once drove an unbounded decode loop.
        let mut p = Vec::new();
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&0u16.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_result(&p).is_err());
        // The legal zero-column shape (no rows) still parses.
        let mut ok = Vec::new();
        ok.extend_from_slice(&0u64.to_le_bytes());
        ok.extend_from_slice(&0u16.to_le_bytes());
        ok.extend_from_slice(&0u32.to_le_bytes());
        let r = decode_result(&ok).unwrap();
        assert!(r.columns.is_empty() && r.rows.is_empty());
    }

    #[test]
    fn truncated_error_rejected() {
        assert!(decode_error(&[6, 0, 0]).is_err());
        assert!(decode_error(&[]).is_err());
        // Length field lies about the remaining bytes.
        let mut p = encode_error(ErrorCode::Sql, 0, "hello");
        p.truncate(p.len() - 2);
        assert!(decode_error(&p).is_err());
    }
}
