//! In-memory multi-series store with I/O accounting, built on the
//! sharded live-ingestion engine.
//!
//! The query pipelines and benchmarks consume pages through this store so
//! every experiment can report how many encoded bytes it actually touched
//! — the quantity behind the paper's I/O-bound observations (Fig. 14(b))
//! and the throughput definition of §VII-B ("tuples in loaded pages per
//! second that counts tuples of pruned pages").
//!
//! Writes go through [`crate::ingest`]: series names hash into N shards
//! (append = shard read lock + per-series mutex, no store-wide lock),
//! and each series buffers points in a hot chunk that seals into a
//! checksummed page at the configured point-count or time threshold.
//! Readers call [`SeriesStore::snapshot`] to get sealed pages plus a
//! point-in-time copy of the hot chunk as one atomic pair, so `SELECT`
//! sees a point the moment `append` returns — no `flush` required.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use etsqp_encoding::Encoding;

use crate::ingest::{
    Hot, HotChunk, HotChunkF64, HotSnapshot, SeriesState, ShardMap, DEFAULT_SHARDS,
};
use crate::page::Page;
use crate::{Error, Result};

/// Counters for encoded bytes and pages handed to readers.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    pages_read: AtomicU64,
}

impl IoStats {
    /// Records one page read of `bytes` encoded bytes.
    pub fn record_page(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Encoded bytes handed out so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Pages handed out so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Resets both counters (between benchmark runs).
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
    }
}

/// Construction knobs for a [`SeriesStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Points per sealed page (the §VI page size the pipelines are tuned
    /// for). Every series created on the store seals at this count — and
    /// keeps sealing at it for the life of the series.
    pub page_points: usize,
    /// Shard count for the series map (rounded up to a power of two).
    pub shards: usize,
    /// Optional time-span seal threshold: a hot chunk whose buffered
    /// range reaches this many time units seals even when short of
    /// `page_points` (Gorilla's "2-hour block" discipline). `None`
    /// disables time-based sealing.
    pub seal_interval: Option<i64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            page_points: crate::series::DEFAULT_PAGE_POINTS,
            shards: DEFAULT_SHARDS,
            seal_interval: None,
        }
    }
}

/// An atomic view of one series: every sealed page plus a point-in-time
/// copy of the hot chunk, captured under a single series-lock hold.
///
/// Any query planned from one snapshot is consistent: it sees a prefix
/// of the series' append stream, with no torn pages and no point counted
/// twice (a point is either in `pages` or in `hot`, never both).
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sealed, immutable, checksummed pages in time order.
    pub pages: Vec<Arc<Page>>,
    /// The hot chunk's buffered columns; `None` when nothing is buffered.
    pub hot: Option<HotSnapshot>,
}

/// A named collection of series, each a vector of sealed pages plus a
/// live hot chunk.
///
/// Cloneable handles share the same underlying store (`Arc` internally),
/// so pipeline threads can read pages concurrently while ingest threads
/// append.
pub struct SeriesStore {
    map: Arc<ShardMap>,
    io: Arc<IoStats>,
    opts: StoreOptions,
}

impl Clone for SeriesStore {
    fn clone(&self) -> Self {
        Self {
            map: Arc::clone(&self.map),
            io: Arc::clone(&self.io),
            opts: self.opts,
        }
    }
}

impl Default for SeriesStore {
    fn default() -> Self {
        Self::with_options(StoreOptions::default())
    }
}

impl SeriesStore {
    /// Creates a store sealing pages of `page_points` points (default
    /// shard count, no time-based sealing).
    pub fn new(page_points: usize) -> Self {
        Self::with_options(StoreOptions {
            page_points,
            ..StoreOptions::default()
        })
    }

    /// Creates a store with explicit sharding and sealing options.
    pub fn with_options(opts: StoreOptions) -> Self {
        Self {
            map: Arc::new(ShardMap::new(opts.shards)),
            io: Arc::new(IoStats::default()),
            opts,
        }
    }

    /// Shared I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Shard count of the underlying series map.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// Registers a series with the given column codecs. Idempotent for an
    /// existing series with the same name.
    pub fn create_series(&self, name: &str, ts_encoding: Encoding, val_encoding: Encoding) {
        self.map.get_or_insert(name, || SeriesState {
            pages: Vec::new(),
            hot: Some(Hot::Int(HotChunk::new(
                ts_encoding,
                val_encoding,
                self.opts.page_points,
                self.opts.seal_interval,
            ))),
        });
    }

    /// Registers a float-valued series (`val_encoding` must be a float
    /// codec: GorillaFloat, Chimp or Elf).
    pub fn create_series_f64(&self, name: &str, ts_encoding: Encoding, val_encoding: Encoding) {
        self.map.get_or_insert(name, || SeriesState {
            pages: Vec::new(),
            hot: Some(Hot::Float(HotChunkF64::new(
                ts_encoding,
                val_encoding,
                self.opts.page_points,
                self.opts.seal_interval,
            ))),
        });
    }

    fn with_series<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut SeriesState) -> Result<R>,
    ) -> Result<R> {
        let cell = self
            .map
            .get(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        let mut state = cell.state.lock();
        f(&mut state)
    }

    /// Appends one point to a series' hot chunk. A page sealed by this
    /// append becomes visible to readers before the call returns.
    pub fn append(&self, name: &str, ts: i64, value: i64) -> Result<()> {
        self.with_series(name, |state| match state.hot.as_mut() {
            Some(Hot::Int(h)) => {
                if let Some(page) = h.push(ts, value)? {
                    state.pages.push(Arc::new(page));
                }
                Ok(())
            }
            Some(Hot::Float(_)) => Err(Error::Misuse("float series; use append_f64")),
            None => Err(Error::Misuse("page-only series has no live writer")),
        })
    }

    /// Appends one float point to a float series.
    pub fn append_f64(&self, name: &str, ts: i64, value: f64) -> Result<()> {
        self.with_series(name, |state| match state.hot.as_mut() {
            Some(Hot::Float(h)) => {
                if let Some(page) = h.push(ts, value)? {
                    state.pages.push(Arc::new(page));
                }
                Ok(())
            }
            Some(Hot::Int(_)) => Err(Error::Misuse("integer series; use append")),
            None => Err(Error::Misuse("page-only series has no live writer")),
        })
    }

    /// Bulk-appends points; pages seal as thresholds are crossed. The
    /// whole batch runs under one series-lock hold, so a concurrent
    /// `flush` can never slice a short page out of the middle of it.
    pub fn append_all(&self, name: &str, ts: &[i64], values: &[i64]) -> Result<()> {
        self.with_series(name, |state| match state.hot.as_mut() {
            Some(Hot::Int(h)) => {
                for (&t, &v) in ts.iter().zip(values) {
                    if let Some(page) = h.push(t, v)? {
                        state.pages.push(Arc::new(page));
                    }
                }
                Ok(())
            }
            Some(Hot::Float(_)) => Err(Error::Misuse("float series; use append_f64")),
            None => Err(Error::Misuse("page-only series has no live writer")),
        })
    }

    /// Force-seals the hot chunk into a (possibly short) page. Empty hot
    /// chunks are a no-op and the series stays writable either way; on a
    /// seal error the buffered points are preserved for retry.
    pub fn flush(&self, name: &str) -> Result<()> {
        self.with_series(name, |state| {
            if let Some(hot) = state.hot.as_mut() {
                if let Some(page) = hot.seal()? {
                    state.pages.push(Arc::new(page));
                }
            }
            Ok(())
        })
    }

    /// Names of all series, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.map.names()
    }

    /// Sealed page count of a series.
    pub fn page_count(&self, name: &str) -> Result<usize> {
        self.with_series(name, |state| Ok(state.pages.len()))
    }

    /// Points currently buffered in the hot chunk (not yet sealed).
    pub fn buffered_points(&self, name: &str) -> Result<usize> {
        self.with_series(name, |state| Ok(state.hot.as_ref().map_or(0, |h| h.len())))
    }

    /// Returns the sealed pages of a series, recording their encoded
    /// bytes as I/O.
    pub fn read_pages(&self, name: &str) -> Result<Vec<Arc<Page>>> {
        let pages = self.peek_pages(name)?;
        for p in &pages {
            self.io.record_page(p.encoded_len());
        }
        Ok(pages)
    }

    /// Returns sealed page handles *without* charging I/O — used by
    /// planners that inspect headers only; readers charge I/O when they
    /// touch payloads.
    pub fn peek_pages(&self, name: &str) -> Result<Vec<Arc<Page>>> {
        self.with_series(name, |state| Ok(state.pages.clone()))
    }

    /// Atomically captures sealed pages plus the hot chunk's buffered
    /// columns under one series-lock hold. This is the read path queries
    /// plan from: the pair is a consistent prefix of the append stream.
    /// No I/O is charged; executors charge pages when they decode them.
    pub fn snapshot(&self, name: &str) -> Result<SeriesSnapshot> {
        self.with_series(name, |state| {
            Ok(SeriesSnapshot {
                pages: state.pages.clone(),
                hot: state.hot.as_ref().and_then(|h| h.snapshot()),
            })
        })
    }

    /// Inserts pre-encoded pages directly (used by TsFile loading and by
    /// benchmarks that prepare data once). Creates a page-only series —
    /// no hot chunk — when the name is new.
    pub fn insert_pages(&self, name: &str, pages: Vec<Page>) {
        let cell = self.map.get_or_insert(name, SeriesState::default);
        let mut state = cell.state.lock();
        state.pages.extend(pages.into_iter().map(Arc::new));
    }

    /// Fault-injection hook: replaces the `index`-th stored page of a
    /// series with a mutated copy. Tests use this to prove that queries
    /// over corrupted pages abort with a typed error instead of returning
    /// silently wrong aggregates — the mutation deliberately does *not*
    /// reseal the page checksum, exactly like real memory or disk
    /// corruption would not.
    pub fn corrupt_page(
        &self,
        name: &str,
        index: usize,
        mutate: impl FnOnce(&mut Page),
    ) -> Result<()> {
        self.with_series(name, |state| {
            let slot = state
                .pages
                .get_mut(index)
                .ok_or(Error::Misuse("page index out of range"))?;
            let mut page = (**slot).clone();
            mutate(&mut page);
            *slot = Arc::new(page);
            Ok(())
        })
    }

    /// Total number of points across all sealed pages of a series
    /// (buffered hot points are reported by [`Self::buffered_points`]).
    pub fn point_count(&self, name: &str) -> Result<u64> {
        self.with_series(name, |state| {
            Ok(state.pages.iter().map(|p| p.header.count as u64).sum())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_store() -> SeriesStore {
        let store = SeriesStore::new(100);
        store.create_series("s1", Encoding::Ts2Diff, Encoding::Ts2Diff);
        let ts: Vec<i64> = (0..250).map(|i| i * 2).collect();
        let vals: Vec<i64> = (0..250).collect();
        store.append_all("s1", &ts, &vals).unwrap();
        store.flush("s1").unwrap();
        store
    }

    #[test]
    fn create_append_flush_read() {
        let store = filled_store();
        assert_eq!(store.page_count("s1").unwrap(), 3);
        assert_eq!(store.point_count("s1").unwrap(), 250);
        let pages = store.read_pages("s1").unwrap();
        let (ts, _) = pages[0].decode().unwrap();
        assert_eq!(ts[0], 0);
    }

    #[test]
    fn io_accounting() {
        let store = filled_store();
        assert_eq!(store.io().pages_read(), 0);
        let pages = store.read_pages("s1").unwrap();
        let expect: u64 = pages.iter().map(|p| p.encoded_len() as u64).sum();
        assert_eq!(store.io().pages_read(), 3);
        assert_eq!(store.io().bytes_read(), expect);
        store.peek_pages("s1").unwrap();
        assert_eq!(store.io().pages_read(), 3, "peek must not charge I/O");
        store.io().reset();
        assert_eq!(store.io().bytes_read(), 0);
    }

    #[test]
    fn missing_series_errors() {
        let store = SeriesStore::default();
        assert!(matches!(
            store.read_pages("nope"),
            Err(Error::NoSuchSeries(_))
        ));
        assert!(store.append("nope", 1, 1).is_err());
    }

    #[test]
    fn append_after_flush_continues() {
        let store = filled_store();
        store.append("s1", 10_000, 1).unwrap();
        store.flush("s1").unwrap();
        assert_eq!(store.point_count("s1").unwrap(), 251);
    }

    #[test]
    fn clone_shares_state() {
        let store = filled_store();
        let clone = store.clone();
        clone.read_pages("s1").unwrap();
        assert_eq!(store.io().pages_read(), 3);
    }

    #[test]
    fn snapshot_sees_unflushed_points() {
        let store = SeriesStore::new(100);
        store.create_series("live", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append("live", 1, 10).unwrap();
        store.append("live", 2, 20).unwrap();
        let snap = store.snapshot("live").unwrap();
        assert!(snap.pages.is_empty());
        let hot = snap.hot.expect("buffered points visible without flush");
        assert_eq!(hot.len(), 2);
        assert_eq!(store.buffered_points("live").unwrap(), 2);
        // peek_pages still reports sealed pages only.
        assert!(store.peek_pages("live").unwrap().is_empty());
    }

    #[test]
    fn snapshot_is_atomic_pair() {
        let store = SeriesStore::new(4);
        store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
        for i in 0..10i64 {
            store.append("s", i, i).unwrap();
        }
        // 10 points at page_points=4: two sealed pages + 2 hot.
        let snap = store.snapshot("s").unwrap();
        let sealed: u64 = snap.pages.iter().map(|p| p.header.count as u64).sum();
        let hot = snap.hot.as_ref().map_or(0, |h| h.len() as u64);
        assert_eq!(sealed, 8);
        assert_eq!(hot, 2);
    }

    #[test]
    fn page_only_series_rejects_appends() {
        let store = SeriesStore::new(100);
        let page = Page::encode(&[1, 2], &[3, 4], Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap();
        store.insert_pages("cold", vec![page]);
        assert!(matches!(store.append("cold", 5, 5), Err(Error::Misuse(_))));
        // But flush and snapshot still work on it.
        store.flush("cold").unwrap();
        let snap = store.snapshot("cold").unwrap();
        assert_eq!(snap.pages.len(), 1);
        assert!(snap.hot.is_none());
    }
}
