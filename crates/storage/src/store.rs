//! In-memory multi-series store with I/O accounting.
//!
//! The query pipelines and benchmarks consume pages through this store so
//! every experiment can report how many encoded bytes it actually touched
//! — the quantity behind the paper's I/O-bound observations (Fig. 14(b))
//! and the throughput definition of §VII-B ("tuples in loaded pages per
//! second that counts tuples of pruned pages").

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use etsqp_encoding::Encoding;
use parking_lot::RwLock;

use crate::page::Page;
use crate::series::{SeriesWriter, SeriesWriterF64};
use crate::{Error, Result};

/// Counters for encoded bytes and pages handed to readers.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    pages_read: AtomicU64,
}

impl IoStats {
    /// Records one page read of `bytes` encoded bytes.
    pub fn record_page(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Encoded bytes handed out so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Pages handed out so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Resets both counters (between benchmark runs).
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
    }
}

enum Writer {
    Int(SeriesWriter),
    Float(SeriesWriterF64),
}

struct SeriesData {
    pages: Vec<Arc<Page>>,
    writer: Option<Writer>,
}

/// A named collection of series, each a vector of encoded pages.
///
/// Cloneable handles share the same underlying store (`Arc` internally),
/// so pipeline threads can read pages concurrently.
pub struct SeriesStore {
    inner: Arc<RwLock<BTreeMap<String, SeriesData>>>,
    io: Arc<IoStats>,
    page_points: usize,
}

impl Clone for SeriesStore {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            io: Arc::clone(&self.io),
            page_points: self.page_points,
        }
    }
}

impl Default for SeriesStore {
    fn default() -> Self {
        Self::new(crate::series::DEFAULT_PAGE_POINTS)
    }
}

impl SeriesStore {
    /// Creates a store flushing pages of `page_points` points.
    pub fn new(page_points: usize) -> Self {
        Self {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
            io: Arc::new(IoStats::default()),
            page_points,
        }
    }

    /// Shared I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Registers a series with the given column codecs. Idempotent for an
    /// existing series with the same name.
    pub fn create_series(&self, name: &str, ts_encoding: Encoding, val_encoding: Encoding) {
        let mut map = self.inner.write();
        map.entry(name.to_string()).or_insert_with(|| SeriesData {
            pages: Vec::new(),
            writer: Some(Writer::Int(SeriesWriter::with_page_points(
                ts_encoding,
                val_encoding,
                self.page_points,
            ))),
        });
    }

    /// Registers a float-valued series (`val_encoding` must be a float
    /// codec: GorillaFloat, Chimp or Elf).
    pub fn create_series_f64(&self, name: &str, ts_encoding: Encoding, val_encoding: Encoding) {
        let mut map = self.inner.write();
        map.entry(name.to_string()).or_insert_with(|| SeriesData {
            pages: Vec::new(),
            writer: Some(Writer::Float(SeriesWriterF64::with_page_points(
                ts_encoding,
                val_encoding,
                self.page_points,
            ))),
        });
    }

    /// Appends one float point to a float series.
    pub fn append_f64(&self, name: &str, ts: i64, value: f64) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        match data.writer.as_mut() {
            Some(Writer::Float(w)) => w.push(ts, value),
            Some(Writer::Int(_)) => Err(Error::Misuse("integer series; use append")),
            None => Err(Error::Misuse("series sealed")),
        }
    }

    /// Appends one point to a series' receive buffer.
    pub fn append(&self, name: &str, ts: i64, value: i64) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        match data.writer.as_mut() {
            Some(Writer::Int(w)) => w.push(ts, value),
            Some(Writer::Float(_)) => Err(Error::Misuse("float series; use append_f64")),
            None => Err(Error::Misuse("series sealed")),
        }
    }

    /// Bulk-appends points and flushes all full pages.
    pub fn append_all(&self, name: &str, ts: &[i64], values: &[i64]) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        match data.writer.as_mut() {
            Some(Writer::Int(w)) => w.push_all(ts, values)?,
            Some(Writer::Float(_)) => return Err(Error::Misuse("float series; use append_f64")),
            None => return Err(Error::Misuse("series sealed")),
        }
        drop(map);
        self.sync(name)
    }

    /// Moves every completed page from the receive buffer into the store
    /// and force-flushes the remainder.
    pub fn flush(&self, name: &str) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        match data.writer.as_mut() {
            Some(Writer::Int(w)) => w.flush_page()?,
            Some(Writer::Float(w)) => w.flush_page()?,
            None => {}
        }
        Self::drain_writer(data)
    }

    /// Moves completed pages out of the buffer without forcing a short page.
    fn sync(&self, name: &str) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        Self::drain_writer(data)
    }

    fn drain_writer(data: &mut SeriesData) -> Result<()> {
        let Some(writer) = data.writer.take() else {
            return Ok(());
        };
        let is_float = matches!(writer, Writer::Float(_));
        let pages = match writer {
            Writer::Int(w) => w.finish()?,
            Writer::Float(w) => w.finish()?,
        };
        let encs = pages
            .first()
            .map(|p| (p.header.ts_encoding, p.header.val_encoding))
            .or_else(|| {
                data.pages
                    .first()
                    .map(|p| (p.header.ts_encoding, p.header.val_encoding))
            });
        data.pages.extend(pages.into_iter().map(Arc::new));
        if let Some((te, ve)) = encs {
            data.writer = Some(if is_float {
                Writer::Float(SeriesWriterF64::with_page_points(
                    te,
                    ve,
                    crate::series::DEFAULT_PAGE_POINTS,
                ))
            } else {
                Writer::Int(SeriesWriter::new(te, ve))
            });
        }
        Ok(())
    }

    /// Names of all series.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Page count of a series.
    pub fn page_count(&self, name: &str) -> Result<usize> {
        let map = self.inner.read();
        map.get(name)
            .map(|d| d.pages.len())
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))
    }

    /// Returns the pages of a series, recording their encoded bytes as I/O.
    pub fn read_pages(&self, name: &str) -> Result<Vec<Arc<Page>>> {
        let map = self.inner.read();
        let data = map
            .get(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        for p in &data.pages {
            self.io.record_page(p.encoded_len());
        }
        Ok(data.pages.clone())
    }

    /// Returns page handles *without* charging I/O — used by planners that
    /// inspect headers only; readers charge I/O when they touch payloads.
    pub fn peek_pages(&self, name: &str) -> Result<Vec<Arc<Page>>> {
        let map = self.inner.read();
        let data = map
            .get(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        Ok(data.pages.clone())
    }

    /// Inserts pre-encoded pages directly (used by TsFile loading and by
    /// benchmarks that prepare data once).
    pub fn insert_pages(&self, name: &str, pages: Vec<Page>) {
        let mut map = self.inner.write();
        let data = map.entry(name.to_string()).or_insert_with(|| SeriesData {
            pages: Vec::new(),
            writer: None,
        });
        data.pages.extend(pages.into_iter().map(Arc::new));
    }

    /// Fault-injection hook: replaces the `index`-th stored page of a
    /// series with a mutated copy. Tests use this to prove that queries
    /// over corrupted pages abort with a typed error instead of returning
    /// silently wrong aggregates — the mutation deliberately does *not*
    /// reseal the page checksum, exactly like real memory or disk
    /// corruption would not.
    pub fn corrupt_page(
        &self,
        name: &str,
        index: usize,
        mutate: impl FnOnce(&mut Page),
    ) -> Result<()> {
        let mut map = self.inner.write();
        let data = map
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        let slot = data
            .pages
            .get_mut(index)
            .ok_or(Error::Misuse("page index out of range"))?;
        let mut page = (**slot).clone();
        mutate(&mut page);
        *slot = Arc::new(page);
        Ok(())
    }

    /// Total number of points across all pages of a series.
    pub fn point_count(&self, name: &str) -> Result<u64> {
        let map = self.inner.read();
        let data = map
            .get(name)
            .ok_or_else(|| Error::NoSuchSeries(name.to_string()))?;
        Ok(data.pages.iter().map(|p| p.header.count as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_store() -> SeriesStore {
        let store = SeriesStore::new(100);
        store.create_series("s1", Encoding::Ts2Diff, Encoding::Ts2Diff);
        let ts: Vec<i64> = (0..250).map(|i| i * 2).collect();
        let vals: Vec<i64> = (0..250).collect();
        store.append_all("s1", &ts, &vals).unwrap();
        store.flush("s1").unwrap();
        store
    }

    #[test]
    fn create_append_flush_read() {
        let store = filled_store();
        assert_eq!(store.page_count("s1").unwrap(), 3);
        assert_eq!(store.point_count("s1").unwrap(), 250);
        let pages = store.read_pages("s1").unwrap();
        let (ts, _) = pages[0].decode().unwrap();
        assert_eq!(ts[0], 0);
    }

    #[test]
    fn io_accounting() {
        let store = filled_store();
        assert_eq!(store.io().pages_read(), 0);
        let pages = store.read_pages("s1").unwrap();
        let expect: u64 = pages.iter().map(|p| p.encoded_len() as u64).sum();
        assert_eq!(store.io().pages_read(), 3);
        assert_eq!(store.io().bytes_read(), expect);
        store.peek_pages("s1").unwrap();
        assert_eq!(store.io().pages_read(), 3, "peek must not charge I/O");
        store.io().reset();
        assert_eq!(store.io().bytes_read(), 0);
    }

    #[test]
    fn missing_series_errors() {
        let store = SeriesStore::default();
        assert!(matches!(
            store.read_pages("nope"),
            Err(Error::NoSuchSeries(_))
        ));
        assert!(store.append("nope", 1, 1).is_err());
    }

    #[test]
    fn append_after_flush_continues() {
        let store = filled_store();
        store.append("s1", 10_000, 1).unwrap();
        store.flush("s1").unwrap();
        assert_eq!(store.point_count("s1").unwrap(), 251);
    }

    #[test]
    fn clone_shares_state() {
        let store = filled_store();
        let clone = store.clone();
        clone.read_pages("s1").unwrap();
        assert_eq!(store.io().pages_read(), 3);
    }
}
