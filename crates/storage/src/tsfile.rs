//! TsFile-lite: a minimal on-disk container for encoded series pages,
//! modelled after the IoT-native TsFile format (paper §VI / Zhao et al.):
//! magic, series directory, length-prefixed pages.
//!
//! ```text
//! magic "ETSQP1"
//! u32 n_series
//! per series:
//!   u16 name_len, name bytes (utf-8)
//!   u32 n_pages
//!   per page: u32 page_len, page image (Page::to_bytes)
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::page::Page;
use crate::store::SeriesStore;
use crate::{Error, Result};

const MAGIC: &[u8; 6] = b"ETSQP1";

/// Writes every flushed page of `store` into a TsFile at `path`.
pub fn write(store: &SeriesStore, path: &Path) -> Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    let names = store.series_names();
    out.write_all(&(names.len() as u32).to_be_bytes())?;
    for name in &names {
        let pages = store.peek_pages(name)?;
        out.write_all(&(name.len() as u16).to_be_bytes())?;
        out.write_all(name.as_bytes())?;
        out.write_all(&(pages.len() as u32).to_be_bytes())?;
        for page in &pages {
            let image = page.to_bytes();
            out.write_all(&(image.len() as u32).to_be_bytes())?;
            out.write_all(&image)?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Reads a TsFile back into a fresh [`SeriesStore`] with an unlimited
/// transient-allocation budget.
pub fn read(path: &Path) -> Result<SeriesStore> {
    read_with_budget(path, &crate::budget::MemoryBudget::unlimited())
}

/// Reads a TsFile, bounding transient page-image allocations by `budget`.
///
/// The reader treats the file as hostile input: every length field is
/// validated against the real file size *before* any allocation sized by
/// it, so a flipped length byte yields [`Error::Corrupt`] (with the byte
/// offset of the bad field) instead of an OOM, and truncation surfaces as
/// a typed error rather than a bare I/O failure.
pub fn read_with_budget(path: &Path, budget: &crate::budget::MemoryBudget) -> Result<SeriesStore> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut input = Tracked {
        inner: BufReader::new(file),
        offset: 0,
    };
    let mut magic = [0u8; 6];
    input.read_exact(&mut magic, "truncated magic")?;
    if &magic != MAGIC {
        return Err(Error::corrupt(0, "bad TsFile magic"));
    }
    let store = SeriesStore::default();
    let n_series = input.read_u32("truncated series count")?;
    // Each series record needs at least a name length and a page count.
    if n_series as u64 > (file_len - input.offset) / 6 {
        return Err(Error::corrupt(6, "series count exceeds file size"));
    }
    for _ in 0..n_series {
        let name_len = input.read_u16("truncated name length")? as usize;
        let mut name_bytes = vec![0u8; name_len];
        let name_at = input.offset;
        input.read_exact(&mut name_bytes, "truncated series name")?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| Error::corrupt(name_at, "series name not utf-8"))?;
        let n_pages_at = input.offset;
        let n_pages = input.read_u32("truncated page count")?;
        // Each page record needs at least its length prefix.
        if n_pages as u64 > (file_len.saturating_sub(input.offset)) / 4 {
            return Err(Error::corrupt(n_pages_at, "page count exceeds file size"));
        }
        let mut pages = Vec::with_capacity((n_pages as usize).min(4096));
        for _ in 0..n_pages {
            let len_at = input.offset;
            let page_len = input.read_u32("truncated page length")? as u64;
            if page_len > file_len.saturating_sub(input.offset) {
                return Err(Error::corrupt(len_at, "page image exceeds file size"));
            }
            // Bound the transient image allocation: hostile files cannot
            // reserve more than the budget allows at once.
            let _guard = budget.acquire(page_len);
            let page_at = input.offset;
            let mut image = vec![0u8; page_len as usize];
            input.read_exact(&mut image, "truncated page image")?;
            let (page, consumed) = Page::from_bytes(&image).map_err(|e| match e {
                // Rebase in-image offsets onto the file.
                Error::Corrupt { offset, reason } => Error::Corrupt {
                    offset: page_at + offset,
                    reason,
                },
                other => other,
            })?;
            if consumed as u64 != page_len {
                return Err(Error::corrupt(len_at, "page image length mismatch"));
            }
            pages.push(page);
        }
        store.insert_pages(&name, pages);
    }
    Ok(store)
}

/// A reader that tracks its byte offset and converts short reads into
/// [`Error::Corrupt`] carrying the offset of the failed field.
struct Tracked<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Tracked<R> {
    fn read_exact(&mut self, buf: &mut [u8], what: &'static str) -> Result<()> {
        let at = self.offset;
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(Error::corrupt(at, what))
            }
            Err(e) => Err(Error::Io(e)),
        }
    }

    fn read_u32(&mut self, what: &'static str) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, what)?;
        Ok(u32::from_be_bytes(b))
    }

    fn read_u16(&mut self, what: &'static str) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b, what)?;
        Ok(u16::from_be_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::Encoding;

    #[test]
    fn file_roundtrip() {
        let store = SeriesStore::new(64);
        for (name, slope) in [("temp", 3i64), ("velocity", -2)] {
            store.create_series(name, Encoding::Ts2Diff, Encoding::Ts2Diff);
            let ts: Vec<i64> = (0..200).map(|i| i * 10).collect();
            let vals: Vec<i64> = (0..200).map(|i| 100 + i * slope).collect();
            store.append_all(name, &ts, &vals).unwrap();
            store.flush(name).unwrap();
        }
        let dir = std::env::temp_dir().join("etsqp_tsfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.etsqp");
        write(&store, &path).unwrap();

        let back = read(&path).unwrap();
        assert_eq!(
            back.series_names(),
            vec!["temp".to_string(), "velocity".to_string()]
        );
        for name in ["temp", "velocity"] {
            assert_eq!(back.point_count(name).unwrap(), 200);
            let orig = store.peek_pages(name).unwrap();
            let got = back.peek_pages(name).unwrap();
            assert_eq!(orig.len(), got.len());
            for (a, b) in orig.iter().zip(&got) {
                assert_eq!(a.header, b.header);
                assert_eq!(a.ts_bytes, b.ts_bytes);
                assert_eq!(a.val_bytes, b.val_bytes);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("etsqp_tsfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_magic.etsqp");
        std::fs::write(&path, b"NOTFIL\x00\x00\x00\x00").unwrap();
        assert!(matches!(read(&path), Err(Error::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let store = SeriesStore::new(64);
        store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
        let ts: Vec<i64> = (0..100).collect();
        store.append_all("s", &ts, &ts).unwrap();
        store.flush("s").unwrap();
        let dir = std::env::temp_dir().join("etsqp_tsfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.etsqp");
        write(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
