//! The receive buffer: accumulates incoming points for one series and
//! flushes bounded encoded pages — the incremental encode-and-flush
//! behaviour of paper §I ("databases encode data incrementally to save
//! the receiving buffers").

use etsqp_encoding::Encoding;

use crate::page::Page;
use crate::{Error, Result};

/// Default points per flushed page.
pub const DEFAULT_PAGE_POINTS: usize = 1024;

/// Buffers points for a single series and emits encoded [`Page`]s.
#[derive(Debug)]
pub struct SeriesWriter {
    ts_encoding: Encoding,
    val_encoding: Encoding,
    page_points: usize,
    ts_buf: Vec<i64>,
    val_buf: Vec<i64>,
    flushed: Vec<Page>,
}

impl SeriesWriter {
    /// Creates a writer flushing pages of [`DEFAULT_PAGE_POINTS`] points.
    pub fn new(ts_encoding: Encoding, val_encoding: Encoding) -> Self {
        Self::with_page_points(ts_encoding, val_encoding, DEFAULT_PAGE_POINTS)
    }

    /// Creates a writer with an explicit page size in points.
    ///
    /// # Panics
    /// If `page_points == 0`.
    pub fn with_page_points(
        ts_encoding: Encoding,
        val_encoding: Encoding,
        page_points: usize,
    ) -> Self {
        assert!(page_points > 0, "page size must be positive");
        Self {
            ts_encoding,
            val_encoding,
            page_points,
            ts_buf: Vec::with_capacity(page_points),
            val_buf: Vec::with_capacity(page_points),
            flushed: Vec::new(),
        }
    }

    /// Appends one point; timestamps must be strictly increasing.
    pub fn push(&mut self, ts: i64, value: i64) -> Result<()> {
        if let Some(&last) = self.ts_buf.last() {
            if ts <= last {
                return Err(Error::OutOfOrder {
                    last,
                    attempted: ts,
                });
            }
        } else if let Some(page) = self.flushed.last() {
            if ts <= page.header.last_ts {
                return Err(Error::OutOfOrder {
                    last: page.header.last_ts,
                    attempted: ts,
                });
            }
        }
        self.ts_buf.push(ts);
        self.val_buf.push(value);
        if self.ts_buf.len() >= self.page_points {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Appends many points.
    pub fn push_all(&mut self, ts: &[i64], values: &[i64]) -> Result<()> {
        assert_eq!(ts.len(), values.len());
        for (&t, &v) in ts.iter().zip(values) {
            self.push(t, v)?;
        }
        Ok(())
    }

    /// Number of points currently buffered (not yet in a page).
    pub fn buffered(&self) -> usize {
        self.ts_buf.len()
    }

    /// Forces the current buffer out as a (possibly short) page.
    pub fn flush_page(&mut self) -> Result<()> {
        if self.ts_buf.is_empty() {
            return Ok(());
        }
        let page = Page::encode(
            &self.ts_buf,
            &self.val_buf,
            self.ts_encoding,
            self.val_encoding,
        )?;
        self.flushed.push(page);
        self.ts_buf.clear();
        self.val_buf.clear();
        Ok(())
    }

    /// Flushes any remainder and returns all pages.
    pub fn finish(mut self) -> Result<Vec<Page>> {
        self.flush_page()?;
        Ok(self.flushed)
    }
}

/// Float-column counterpart of [`SeriesWriter`].
#[derive(Debug)]
pub struct SeriesWriterF64 {
    ts_encoding: Encoding,
    val_encoding: Encoding,
    page_points: usize,
    ts_buf: Vec<i64>,
    val_buf: Vec<f64>,
    flushed: Vec<Page>,
}

impl SeriesWriterF64 {
    /// Creates a float writer (`val_encoding` must be a float codec).
    pub fn with_page_points(
        ts_encoding: Encoding,
        val_encoding: Encoding,
        page_points: usize,
    ) -> Self {
        assert!(page_points > 0, "page size must be positive");
        assert!(val_encoding.is_float(), "value codec must be a float codec");
        Self {
            ts_encoding,
            val_encoding,
            page_points,
            ts_buf: Vec::with_capacity(page_points),
            val_buf: Vec::with_capacity(page_points),
            flushed: Vec::new(),
        }
    }

    /// Appends one float point; timestamps must be strictly increasing.
    pub fn push(&mut self, ts: i64, value: f64) -> Result<()> {
        if let Some(&last) = self.ts_buf.last() {
            if ts <= last {
                return Err(Error::OutOfOrder {
                    last,
                    attempted: ts,
                });
            }
        } else if let Some(page) = self.flushed.last() {
            if ts <= page.header.last_ts {
                return Err(Error::OutOfOrder {
                    last: page.header.last_ts,
                    attempted: ts,
                });
            }
        }
        self.ts_buf.push(ts);
        self.val_buf.push(value);
        if self.ts_buf.len() >= self.page_points {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Forces the current buffer out as a (possibly short) page.
    pub fn flush_page(&mut self) -> Result<()> {
        if self.ts_buf.is_empty() {
            return Ok(());
        }
        let page = Page::encode_f64(
            &self.ts_buf,
            &self.val_buf,
            self.ts_encoding,
            self.val_encoding,
        )?;
        self.flushed.push(page);
        self.ts_buf.clear();
        self.val_buf.clear();
        Ok(())
    }

    /// Flushes any remainder and returns all pages.
    pub fn finish(mut self) -> Result<Vec<Page>> {
        self.flush_page()?;
        Ok(self.flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_full_pages_and_remainder() {
        let mut w = SeriesWriter::with_page_points(Encoding::Ts2Diff, Encoding::Ts2Diff, 100);
        for i in 0..250i64 {
            w.push(i * 5, i).unwrap();
        }
        let pages = w.finish().unwrap();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0].header.count, 100);
        assert_eq!(pages[2].header.count, 50);
        assert_eq!(pages[1].header.first_ts, 500);
    }

    #[test]
    fn rejects_out_of_order_within_buffer() {
        let mut w = SeriesWriter::new(Encoding::Ts2Diff, Encoding::Ts2Diff);
        w.push(10, 1).unwrap();
        assert!(matches!(w.push(10, 2), Err(Error::OutOfOrder { .. })));
        assert!(matches!(w.push(5, 2), Err(Error::OutOfOrder { .. })));
    }

    #[test]
    fn rejects_out_of_order_across_page_boundary() {
        let mut w = SeriesWriter::with_page_points(Encoding::Ts2Diff, Encoding::Ts2Diff, 2);
        w.push(1, 0).unwrap();
        w.push(2, 0).unwrap(); // flushes
        assert_eq!(w.buffered(), 0);
        assert!(w.push(2, 0).is_err());
        w.push(3, 0).unwrap();
    }

    #[test]
    fn float_writer_pages_roundtrip() {
        let mut w = SeriesWriterF64::with_page_points(Encoding::Ts2Diff, Encoding::Chimp, 64);
        let vals: Vec<f64> = (0..200).map(|i| 1.5 + i as f64 * 0.125).collect();
        for (i, &v) in vals.iter().enumerate() {
            w.push(i as i64 * 5, v).unwrap();
        }
        let pages = w.finish().unwrap();
        assert_eq!(pages.len(), 4);
        let mut all = Vec::new();
        for p in &pages {
            let (_, v) = p.decode_f64().unwrap();
            all.extend(v);
        }
        assert_eq!(all, vals);
    }

    #[test]
    fn float_writer_rejects_out_of_order() {
        let mut w = SeriesWriterF64::with_page_points(Encoding::Ts2Diff, Encoding::Elf, 16);
        w.push(5, 1.0).unwrap();
        assert!(w.push(5, 2.0).is_err());
    }

    #[test]
    fn empty_writer_finishes_empty() {
        let w = SeriesWriter::new(Encoding::Ts2Diff, Encoding::Ts2Diff);
        assert!(w.finish().unwrap().is_empty());
    }

    #[test]
    fn pages_decode_back_to_input() {
        let ts: Vec<i64> = (0..333).map(|i| i * 7).collect();
        let vals: Vec<i64> = (0..333).map(|i| (i * i) % 97).collect();
        let mut w = SeriesWriter::with_page_points(Encoding::Ts2Diff, Encoding::Sprintz, 128);
        w.push_all(&ts, &vals).unwrap();
        let pages = w.finish().unwrap();
        let mut all_ts = Vec::new();
        let mut all_vals = Vec::new();
        for p in &pages {
            let (t, v) = p.decode().unwrap();
            all_ts.extend(t);
            all_vals.extend(v);
        }
        assert_eq!(all_ts, ts);
        assert_eq!(all_vals, vals);
    }
}
