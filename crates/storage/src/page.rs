//! Encoded pages: the unit of storage, decoding, pruning and scheduling.

use bytes::Bytes;
use etsqp_encoding::Encoding;

use crate::{Error, Result};

/// Statistics and codec tags stored ahead of every page's payload —
/// the header the pruning rules of paper §V read without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Number of (timestamp, value) tuples in the page.
    pub count: u32,
    /// First (smallest) timestamp.
    pub first_ts: i64,
    /// Last (largest) timestamp.
    pub last_ts: i64,
    /// Minimum value in the page.
    pub min_value: i64,
    /// Maximum value in the page.
    pub max_value: i64,
    /// Codec of the timestamp column.
    pub ts_encoding: Encoding,
    /// Codec of the value column.
    pub val_encoding: Encoding,
}

/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 4 + 8 * 4 + 2;

impl PageHeader {
    /// Serializes the header (big-endian, fixed width).
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&self.count.to_be_bytes());
        out[4..12].copy_from_slice(&self.first_ts.to_be_bytes());
        out[12..20].copy_from_slice(&self.last_ts.to_be_bytes());
        out[20..28].copy_from_slice(&self.min_value.to_be_bytes());
        out[28..36].copy_from_slice(&self.max_value.to_be_bytes());
        out[36] = self.ts_encoding.tag();
        out[37] = self.val_encoding.tag();
        out
    }

    /// Deserializes a header written by [`PageHeader::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(Error::Corrupt("page header truncated"));
        }
        Ok(PageHeader {
            count: u32::from_be_bytes(bytes[0..4].try_into().unwrap()),
            first_ts: i64::from_be_bytes(bytes[4..12].try_into().unwrap()),
            last_ts: i64::from_be_bytes(bytes[12..20].try_into().unwrap()),
            min_value: i64::from_be_bytes(bytes[20..28].try_into().unwrap()),
            max_value: i64::from_be_bytes(bytes[28..36].try_into().unwrap()),
            ts_encoding: Encoding::from_tag(bytes[36])?,
            val_encoding: Encoding::from_tag(bytes[37])?,
        })
    }

    /// Whether the page's time range intersects `[t_lo, t_hi]` (inclusive).
    pub fn overlaps_time(&self, t_lo: i64, t_hi: i64) -> bool {
        self.first_ts <= t_hi && self.last_ts >= t_lo
    }

    /// Whether any value in the page can satisfy `[v_lo, v_hi]` (inclusive).
    pub fn overlaps_value(&self, v_lo: i64, v_hi: i64) -> bool {
        self.min_value <= v_hi && self.max_value >= v_lo
    }
}

/// One encoded page: header + timestamp chunk + value chunk.
///
/// Chunks are cheaply cloneable [`Bytes`], so pipeline jobs on different
/// threads share the underlying buffers without copying.
#[derive(Debug, Clone)]
pub struct Page {
    /// Page statistics and codec tags.
    pub header: PageHeader,
    /// Encoded timestamp column.
    pub ts_bytes: Bytes,
    /// Encoded value column.
    pub val_bytes: Bytes,
}

impl Page {
    /// Builds a page by encoding `(timestamps, values)` with the given
    /// codecs. Timestamps must be strictly increasing and non-empty.
    pub fn encode(
        timestamps: &[i64],
        values: &[i64],
        ts_encoding: Encoding,
        val_encoding: Encoding,
    ) -> Result<Page> {
        assert_eq!(timestamps.len(), values.len(), "column length mismatch");
        assert!(!timestamps.is_empty(), "empty page");
        debug_assert!(
            timestamps.windows(2).all(|w| w[0] < w[1]),
            "unsorted timestamps"
        );
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in values {
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
        Ok(Page {
            header: PageHeader {
                count: timestamps.len() as u32,
                first_ts: timestamps[0],
                last_ts: *timestamps.last().unwrap(),
                min_value: min_v,
                max_value: max_v,
                ts_encoding,
                val_encoding,
            },
            ts_bytes: Bytes::from(ts_encoding.encode_i64(timestamps)),
            val_bytes: Bytes::from(val_encoding.encode_i64(values)),
        })
    }

    /// Builds a page from a float value column: the value chunk uses a
    /// float XOR codec; header min/max hold the order-preserving integer
    /// mapping of the float extremes, so page-level range pruning works
    /// unchanged (compare against `f64_to_ordered_i64` of the bounds).
    pub fn encode_f64(
        timestamps: &[i64],
        values: &[f64],
        ts_encoding: Encoding,
        val_encoding: Encoding,
    ) -> Result<Page> {
        assert_eq!(timestamps.len(), values.len(), "column length mismatch");
        assert!(!timestamps.is_empty(), "empty page");
        assert!(val_encoding.is_float(), "value codec must be a float codec");
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in values {
            let m = etsqp_encoding::f64_to_ordered_i64(v);
            min_v = min_v.min(m);
            max_v = max_v.max(m);
        }
        Ok(Page {
            header: PageHeader {
                count: timestamps.len() as u32,
                first_ts: timestamps[0],
                last_ts: *timestamps.last().unwrap(),
                min_value: min_v,
                max_value: max_v,
                ts_encoding,
                val_encoding,
            },
            ts_bytes: Bytes::from(ts_encoding.encode_i64(timestamps)),
            val_bytes: Bytes::from(val_encoding.encode_f64(values)),
        })
    }

    /// Decodes a float page's columns.
    ///
    /// # Panics
    /// If the value codec is not a float codec.
    pub fn decode_f64(&self) -> Result<(Vec<i64>, Vec<f64>)> {
        let ts = self.header.ts_encoding.decode_i64(&self.ts_bytes)?;
        let vals = self.header.val_encoding.decode_f64(&self.val_bytes)?;
        Ok((ts, vals))
    }

    /// Serial reference decode of both columns.
    pub fn decode(&self) -> Result<(Vec<i64>, Vec<i64>)> {
        let ts = self.header.ts_encoding.decode_i64(&self.ts_bytes)?;
        let vals = self.header.val_encoding.decode_i64(&self.val_bytes)?;
        Ok((ts, vals))
    }

    /// Total encoded size (header + both chunks).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.ts_bytes.len() + self.val_bytes.len()
    }

    /// Serializes the full page (header, chunk lengths, chunks).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() + 8);
        out.extend_from_slice(&self.header.to_bytes());
        out.extend_from_slice(&(self.ts_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.val_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ts_bytes);
        out.extend_from_slice(&self.val_bytes);
        out
    }

    /// Deserializes a page written by [`Page::to_bytes`], returning the
    /// page and the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Page, usize)> {
        let header = PageHeader::from_bytes(bytes)?;
        let mut off = HEADER_LEN;
        if bytes.len() < off + 8 {
            return Err(Error::Corrupt("page chunk lengths truncated"));
        }
        let ts_len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let val_len = u32::from_be_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
        off += 8;
        if bytes.len() < off + ts_len + val_len {
            return Err(Error::Corrupt("page chunks truncated"));
        }
        let ts_bytes = Bytes::copy_from_slice(&bytes[off..off + ts_len]);
        let val_bytes = Bytes::copy_from_slice(&bytes[off + ts_len..off + ts_len + val_len]);
        off += ts_len + val_len;
        Ok((
            Page {
                header,
                ts_bytes,
                val_bytes,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> Page {
        let ts: Vec<i64> = (0..100).map(|i| 1000 + i * 10).collect();
        let vals: Vec<i64> = (0..100).map(|i| 50 + (i % 13)).collect();
        Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap()
    }

    #[test]
    fn header_roundtrip() {
        let page = sample_page();
        let parsed = PageHeader::from_bytes(&page.header.to_bytes()).unwrap();
        assert_eq!(parsed, page.header);
    }

    #[test]
    fn header_stats_correct() {
        let page = sample_page();
        assert_eq!(page.header.count, 100);
        assert_eq!(page.header.first_ts, 1000);
        assert_eq!(page.header.last_ts, 1990);
        assert_eq!(page.header.min_value, 50);
        assert_eq!(page.header.max_value, 62);
    }

    #[test]
    fn page_decode_roundtrip() {
        let page = sample_page();
        let (ts, vals) = page.decode().unwrap();
        assert_eq!(ts.len(), 100);
        assert_eq!(ts[0], 1000);
        assert_eq!(vals[12], 62);
    }

    #[test]
    fn page_serialization_roundtrip() {
        let page = sample_page();
        let bytes = page.to_bytes();
        let (back, consumed) = Page::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.header, page.header);
        assert_eq!(back.ts_bytes, page.ts_bytes);
        assert_eq!(back.val_bytes, page.val_bytes);
    }

    #[test]
    fn overlap_predicates() {
        let page = sample_page();
        assert!(page.header.overlaps_time(1990, 5000));
        assert!(page.header.overlaps_time(0, 1000));
        assert!(!page.header.overlaps_time(2000, 5000));
        assert!(page.header.overlaps_value(60, 100));
        assert!(!page.header.overlaps_value(63, 100));
    }

    #[test]
    fn float_page_roundtrip_and_stats() {
        let ts: Vec<i64> = (0..50).map(|i| i * 10).collect();
        let vals: Vec<f64> = (0..50).map(|i| 20.0 + (i as f64) * 0.25 - 3.0).collect();
        for enc in [Encoding::GorillaFloat, Encoding::Chimp, Encoding::Elf] {
            let page = Page::encode_f64(&ts, &vals, Encoding::Ts2Diff, enc).unwrap();
            let (t2, v2) = page.decode_f64().unwrap();
            assert_eq!(t2, ts);
            for (a, b) in v2.iter().zip(&vals) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", enc.name());
            }
            // Header stats map the float extremes order-preservingly.
            let lo = etsqp_encoding::ordered_i64_to_f64(page.header.min_value);
            let hi = etsqp_encoding::ordered_i64_to_f64(page.header.max_value);
            assert_eq!(lo, 17.0);
            assert_eq!(hi, 17.0 + 49.0 * 0.25);
            // Range-pruning predicate works on the mapped domain.
            let q_lo = etsqp_encoding::f64_to_ordered_i64(100.0);
            assert!(!page.header.overlaps_value(q_lo, i64::MAX));
        }
    }

    #[test]
    fn truncated_page_rejected() {
        let bytes = sample_page().to_bytes();
        assert!(Page::from_bytes(&bytes[..HEADER_LEN + 4]).is_err());
        assert!(Page::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
