//! Encoded pages: the unit of storage, decoding, pruning and scheduling.

use bytes::Bytes;
use etsqp_encoding::Encoding;

use crate::{Error, Result};

/// Statistics and codec tags stored ahead of every page's payload —
/// the header the pruning rules of paper §V read without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Number of (timestamp, value) tuples in the page.
    pub count: u32,
    /// First (smallest) timestamp.
    pub first_ts: i64,
    /// Last (largest) timestamp.
    pub last_ts: i64,
    /// Minimum value in the page.
    pub min_value: i64,
    /// Maximum value in the page.
    pub max_value: i64,
    /// Codec of the timestamp column.
    pub ts_encoding: Encoding,
    /// Codec of the value column.
    pub val_encoding: Encoding,
}

/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 4 + 8 * 4 + 2;

/// Fast 64-bit-chunked FNV-style checksum over a page's header bytes and
/// payload chunks.
///
/// Not cryptographic — it exists to turn random on-disk or in-memory
/// corruption into a deterministic typed error instead of a silently
/// wrong aggregate. Processing eight bytes per round keeps the check
/// cheap next to the SIMD decode it guards.
pub fn page_checksum(parts: &[&[u8]]) -> u32 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in parts {
        // Length is mixed in so chunk-boundary shifts change the digest.
        h ^= chunk.len() as u64;
        h = h.wrapping_mul(PRIME);
        let mut it = chunk.chunks_exact(8);
        for w in &mut it {
            let mut b = [0u8; 8];
            b.copy_from_slice(w);
            h ^= u64::from_le_bytes(b);
            h = h.wrapping_mul(PRIME);
        }
        let mut tail = [0u8; 8];
        tail[..it.remainder().len()].copy_from_slice(it.remainder());
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    (h ^ (h >> 32)) as u32
}

impl PageHeader {
    /// Serializes the header (big-endian, fixed width).
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&self.count.to_be_bytes());
        out[4..12].copy_from_slice(&self.first_ts.to_be_bytes());
        out[12..20].copy_from_slice(&self.last_ts.to_be_bytes());
        out[20..28].copy_from_slice(&self.min_value.to_be_bytes());
        out[28..36].copy_from_slice(&self.max_value.to_be_bytes());
        out[36] = self.ts_encoding.tag();
        out[37] = self.val_encoding.tag();
        out
    }

    /// Deserializes a header written by [`PageHeader::to_bytes`],
    /// rejecting structurally impossible statistics (count of zero or
    /// beyond the page cap, inverted time or value ranges) so a hostile
    /// header cannot reach the pruning rules or the decoders.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(Error::corrupt(bytes.len() as u64, "page header truncated"));
        }
        let header = PageHeader {
            count: {
                let mut b = [0u8; 4];
                b.copy_from_slice(&bytes[0..4]);
                u32::from_be_bytes(b)
            },
            first_ts: i64::from_be_bytes(read8(bytes, 4)),
            last_ts: i64::from_be_bytes(read8(bytes, 12)),
            min_value: i64::from_be_bytes(read8(bytes, 20)),
            max_value: i64::from_be_bytes(read8(bytes, 28)),
            ts_encoding: Encoding::from_tag(bytes[36])
                .map_err(|_| Error::corrupt(36, "unknown timestamp encoding tag"))?,
            val_encoding: Encoding::from_tag(bytes[37])
                .map_err(|_| Error::corrupt(37, "unknown value encoding tag"))?,
        };
        if header.count == 0 {
            return Err(Error::corrupt(0, "page declares zero tuples"));
        }
        if header.count as usize > etsqp_encoding::MAX_PAGE_COUNT {
            return Err(Error::corrupt(0, "page count exceeds page cap"));
        }
        if header.first_ts > header.last_ts {
            return Err(Error::corrupt(4, "page time range inverted"));
        }
        if header.min_value > header.max_value {
            return Err(Error::corrupt(20, "page value range inverted"));
        }
        Ok(header)
    }

    /// Whether the page's time range intersects `[t_lo, t_hi]` (inclusive).
    pub fn overlaps_time(&self, t_lo: i64, t_hi: i64) -> bool {
        self.first_ts <= t_hi && self.last_ts >= t_lo
    }

    /// Whether any value in the page can satisfy `[v_lo, v_hi]` (inclusive).
    pub fn overlaps_value(&self, v_lo: i64, v_hi: i64) -> bool {
        self.min_value <= v_hi && self.max_value >= v_lo
    }
}

/// Copies eight header bytes starting at `off` (caller checked bounds).
fn read8(bytes: &[u8], off: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    let end = (off + 8).min(bytes.len());
    out[..end - off].copy_from_slice(&bytes[off..end]);
    out
}

/// One encoded page: header + timestamp chunk + value chunk.
///
/// Chunks are cheaply cloneable [`Bytes`], so pipeline jobs on different
/// threads share the underlying buffers without copying.
#[derive(Debug, Clone)]
pub struct Page {
    /// Page statistics and codec tags.
    pub header: PageHeader,
    /// Encoded timestamp column.
    pub ts_bytes: Bytes,
    /// Encoded value column.
    pub val_bytes: Bytes,
    /// Checksum over the header bytes and both chunks, fixed at encode or
    /// load time. [`Page::verify`] recomputes it before payloads are
    /// trusted; [`Page::to_bytes`] persists it as the image trailer.
    pub checksum: u32,
}

impl Page {
    /// Assembles a page from parts, sealing it with a fresh checksum.
    pub fn new(header: PageHeader, ts_bytes: Bytes, val_bytes: Bytes) -> Page {
        let checksum = page_checksum(&[&header.to_bytes(), &ts_bytes, &val_bytes]);
        Page {
            header,
            ts_bytes,
            val_bytes,
            checksum,
        }
    }

    /// Recomputes the checksum and compares it against the sealed one,
    /// catching payload corruption before a decoder or a fused kernel
    /// consumes the chunk bytes.
    pub fn verify(&self) -> Result<()> {
        let now = page_checksum(&[&self.header.to_bytes(), &self.ts_bytes, &self.val_bytes]);
        if now != self.checksum {
            return Err(Error::corrupt(0, "page checksum mismatch"));
        }
        Ok(())
    }

    /// Builds a page by encoding `(timestamps, values)` with the given
    /// codecs. Timestamps must be strictly increasing and non-empty.
    pub fn encode(
        timestamps: &[i64],
        values: &[i64],
        ts_encoding: Encoding,
        val_encoding: Encoding,
    ) -> Result<Page> {
        assert_eq!(timestamps.len(), values.len(), "column length mismatch");
        assert!(!timestamps.is_empty(), "empty page");
        debug_assert!(
            timestamps.windows(2).all(|w| w[0] < w[1]),
            "unsorted timestamps"
        );
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in values {
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
        Ok(Page::new(
            PageHeader {
                count: timestamps.len() as u32,
                first_ts: timestamps[0],
                // lint:allow(no-panic-paths) -- encode side: non-empty
                // is asserted above; no untrusted bytes reach here.
                last_ts: *timestamps.last().unwrap(),
                min_value: min_v,
                max_value: max_v,
                ts_encoding,
                val_encoding,
            },
            Bytes::from(ts_encoding.encode_i64(timestamps)),
            Bytes::from(val_encoding.encode_i64(values)),
        ))
    }

    /// Builds a page from a float value column: the value chunk uses a
    /// float XOR codec; header min/max hold the order-preserving integer
    /// mapping of the float extremes, so page-level range pruning works
    /// unchanged (compare against `f64_to_ordered_i64` of the bounds).
    pub fn encode_f64(
        timestamps: &[i64],
        values: &[f64],
        ts_encoding: Encoding,
        val_encoding: Encoding,
    ) -> Result<Page> {
        assert_eq!(timestamps.len(), values.len(), "column length mismatch");
        assert!(!timestamps.is_empty(), "empty page");
        assert!(val_encoding.is_float(), "value codec must be a float codec");
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in values {
            let m = etsqp_encoding::f64_to_ordered_i64(v);
            min_v = min_v.min(m);
            max_v = max_v.max(m);
        }
        Ok(Page::new(
            PageHeader {
                count: timestamps.len() as u32,
                first_ts: timestamps[0],
                // lint:allow(no-panic-paths) -- encode side: non-empty
                // is asserted above; no untrusted bytes reach here.
                last_ts: *timestamps.last().unwrap(),
                min_value: min_v,
                max_value: max_v,
                ts_encoding,
                val_encoding,
            },
            Bytes::from(ts_encoding.encode_i64(timestamps)),
            Bytes::from(val_encoding.encode_f64(values)),
        ))
    }

    /// Decodes a float page's columns (checksum-verified).
    pub fn decode_f64(&self) -> Result<(Vec<i64>, Vec<f64>)> {
        self.verify()?;
        let ts = self.header.ts_encoding.decode_i64(&self.ts_bytes)?;
        let vals = self.header.val_encoding.decode_f64(&self.val_bytes)?;
        if vals.len() != ts.len() {
            return Err(Error::corrupt(0, "column lengths disagree"));
        }
        self.check_timestamps(&ts)?;
        Ok((ts, vals))
    }

    /// Serial reference decode of both columns (checksum-verified).
    pub fn decode(&self) -> Result<(Vec<i64>, Vec<i64>)> {
        self.verify()?;
        let ts = self.header.ts_encoding.decode_i64(&self.ts_bytes)?;
        let vals = self.header.val_encoding.decode_i64(&self.val_bytes)?;
        if vals.len() != ts.len() {
            return Err(Error::corrupt(0, "column lengths disagree"));
        }
        self.check_timestamps(&ts)?;
        Ok((ts, vals))
    }

    /// O(1) consistency check of a decoded timestamp column against the
    /// header statistics the §V pruning rules trusted: element count and
    /// the first/last timestamps must agree, so a header that lied about
    /// its time range cannot survive a full decode undetected.
    pub fn check_timestamps(&self, ts: &[i64]) -> Result<()> {
        if ts.len() != self.header.count as usize {
            return Err(Error::corrupt(0, "decoded count disagrees with header"));
        }
        match (ts.first(), ts.last()) {
            (Some(&first), Some(&last))
                if first == self.header.first_ts && last == self.header.last_ts =>
            {
                Ok(())
            }
            (None, _) => Ok(()),
            _ => Err(Error::corrupt(
                4,
                "decoded time range disagrees with header",
            )),
        }
    }

    /// Total encoded size (header + both chunks).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.ts_bytes.len() + self.val_bytes.len()
    }

    /// Serializes the full page (header, chunk lengths, chunks, checksum
    /// trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() + 12);
        out.extend_from_slice(&self.header.to_bytes());
        out.extend_from_slice(&(self.ts_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.val_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ts_bytes);
        out.extend_from_slice(&self.val_bytes);
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Deserializes a page written by [`Page::to_bytes`], returning the
    /// page and the number of bytes consumed. The checksum trailer must
    /// match a digest recomputed over the image, so any flipped bit in
    /// the header or either chunk is rejected here — before the header
    /// statistics can reach the pruning rules.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Page, usize)> {
        let header = PageHeader::from_bytes(bytes)?;
        let mut off = HEADER_LEN;
        if bytes.len() < off + 8 {
            return Err(Error::corrupt(off as u64, "page chunk lengths truncated"));
        }
        let ts_len =
            u32::from_be_bytes(read8(bytes, off)[..4].try_into().unwrap_or([0; 4])) as usize;
        let val_len =
            u32::from_be_bytes(read8(bytes, off + 4)[..4].try_into().unwrap_or([0; 4])) as usize;
        off += 8;
        let chunks_end = off
            .checked_add(ts_len)
            .and_then(|n| n.checked_add(val_len))
            .ok_or(Error::Corrupt {
                offset: HEADER_LEN as u64,
                reason: "page chunk lengths overflow",
            })?;
        if bytes.len() < chunks_end + 4 {
            return Err(Error::corrupt(off as u64, "page chunks truncated"));
        }
        let ts_bytes = Bytes::copy_from_slice(&bytes[off..off + ts_len]);
        let val_bytes = Bytes::copy_from_slice(&bytes[off + ts_len..chunks_end]);
        let mut crc = [0u8; 4];
        crc.copy_from_slice(&bytes[chunks_end..chunks_end + 4]);
        let stored = u32::from_be_bytes(crc);
        let computed = page_checksum(&[&bytes[..HEADER_LEN], &ts_bytes, &val_bytes]);
        if stored != computed {
            return Err(Error::corrupt(chunks_end as u64, "page checksum mismatch"));
        }
        Ok((
            Page {
                header,
                ts_bytes,
                val_bytes,
                checksum: stored,
            },
            chunks_end + 4,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> Page {
        let ts: Vec<i64> = (0..100).map(|i| 1000 + i * 10).collect();
        let vals: Vec<i64> = (0..100).map(|i| 50 + (i % 13)).collect();
        Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap()
    }

    #[test]
    fn header_roundtrip() {
        let page = sample_page();
        let parsed = PageHeader::from_bytes(&page.header.to_bytes()).unwrap();
        assert_eq!(parsed, page.header);
    }

    #[test]
    fn header_stats_correct() {
        let page = sample_page();
        assert_eq!(page.header.count, 100);
        assert_eq!(page.header.first_ts, 1000);
        assert_eq!(page.header.last_ts, 1990);
        assert_eq!(page.header.min_value, 50);
        assert_eq!(page.header.max_value, 62);
    }

    #[test]
    fn page_decode_roundtrip() {
        let page = sample_page();
        let (ts, vals) = page.decode().unwrap();
        assert_eq!(ts.len(), 100);
        assert_eq!(ts[0], 1000);
        assert_eq!(vals[12], 62);
    }

    #[test]
    fn page_serialization_roundtrip() {
        let page = sample_page();
        let bytes = page.to_bytes();
        let (back, consumed) = Page::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.header, page.header);
        assert_eq!(back.ts_bytes, page.ts_bytes);
        assert_eq!(back.val_bytes, page.val_bytes);
    }

    #[test]
    fn overlap_predicates() {
        let page = sample_page();
        assert!(page.header.overlaps_time(1990, 5000));
        assert!(page.header.overlaps_time(0, 1000));
        assert!(!page.header.overlaps_time(2000, 5000));
        assert!(page.header.overlaps_value(60, 100));
        assert!(!page.header.overlaps_value(63, 100));
    }

    #[test]
    fn float_page_roundtrip_and_stats() {
        let ts: Vec<i64> = (0..50).map(|i| i * 10).collect();
        let vals: Vec<f64> = (0..50).map(|i| 20.0 + (i as f64) * 0.25 - 3.0).collect();
        for enc in [Encoding::GorillaFloat, Encoding::Chimp, Encoding::Elf] {
            let page = Page::encode_f64(&ts, &vals, Encoding::Ts2Diff, enc).unwrap();
            let (t2, v2) = page.decode_f64().unwrap();
            assert_eq!(t2, ts);
            for (a, b) in v2.iter().zip(&vals) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", enc.name());
            }
            // Header stats map the float extremes order-preservingly.
            let lo = etsqp_encoding::ordered_i64_to_f64(page.header.min_value);
            let hi = etsqp_encoding::ordered_i64_to_f64(page.header.max_value);
            assert_eq!(lo, 17.0);
            assert_eq!(hi, 17.0 + 49.0 * 0.25);
            // Range-pruning predicate works on the mapped domain.
            let q_lo = etsqp_encoding::f64_to_ordered_i64(100.0);
            assert!(!page.header.overlaps_value(q_lo, i64::MAX));
        }
    }

    #[test]
    fn truncated_page_rejected() {
        let bytes = sample_page().to_bytes();
        assert!(Page::from_bytes(&bytes[..HEADER_LEN + 4]).is_err());
        assert!(Page::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
