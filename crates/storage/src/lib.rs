//! # etsqp-storage — page-based time-series storage
//!
//! Models how IoT databases lay out encoded series (paper §VI, Apache
//! IoTDB / TsFile): every time series is stored as a sequence of **pages**,
//! each encoded separately with a private header carrying the statistics
//! the pruning rules of §V need (first/last timestamp, min/max value,
//! element count) plus the codec tags of the timestamp and value columns.
//!
//! * [`page::Page`] — one encoded page (timestamp chunk + value chunk).
//! * [`ingest`] — the live write path: a sharded series map where each
//!   series owns a hot append chunk that seals into pages at a point or
//!   time threshold (Gorilla-style hot/sealed split).
//! * [`store::SeriesStore`] — an in-memory multi-series store with I/O
//!   accounting (pages and bytes touched), the substrate the query
//!   pipelines and benchmarks run against. Queries snapshot sealed pages
//!   plus the hot chunk atomically via [`store::SeriesStore::snapshot`].
//! * [`series::SeriesWriter`] — the legacy standalone receive buffer,
//!   kept for encode-and-flush experiments outside a store.
//! * [`tsfile::TsFile`] — a minimal on-disk container (magic, series
//!   index, length-prefixed pages) for persistence round-trips.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod ingest;
pub mod page;
pub mod series;
pub mod store;
pub mod tsfile;

// Re-exported so downstream fault-injection tests can rebuild page
// payloads (`Page::{ts_bytes, val_bytes}`) without a direct `bytes` dep.
pub use bytes::Bytes;

/// Errors raised by storage operations.
#[derive(Debug)]
pub enum Error {
    /// Underlying codec failure.
    Encoding(etsqp_encoding::Error),
    /// Structural problem in a file or page image.
    Corrupt {
        /// Byte offset into the file or image where the problem was found.
        offset: u64,
        /// What was wrong at that offset.
        reason: &'static str,
    },
    /// A series handle was used against its declared type or lifecycle
    /// (e.g. integer append on a float series) — caller error, not
    /// corrupt data.
    Misuse(&'static str),
    /// Timestamps must be strictly increasing within a series.
    OutOfOrder {
        /// Latest timestamp already in the series.
        last: i64,
        /// The out-of-order timestamp that was rejected.
        attempted: i64,
    },
    /// The requested series does not exist.
    NoSuchSeries(String),
    /// I/O failure while reading or writing a TsFile.
    Io(std::io::Error),
}

impl Error {
    /// Builds a [`Error::Corrupt`] at a byte offset.
    pub fn corrupt(offset: u64, reason: &'static str) -> Self {
        Error::Corrupt { offset, reason }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Encoding(e) => write!(f, "encoding error: {e}"),
            Error::Corrupt { offset, reason } => {
                write!(f, "corrupt storage image at byte {offset}: {reason}")
            }
            Error::Misuse(what) => write!(f, "series misuse: {what}"),
            Error::OutOfOrder { last, attempted } => {
                write!(f, "timestamp {attempted} not after {last}")
            }
            Error::NoSuchSeries(name) => write!(f, "no such series: {name}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Encoding(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<etsqp_encoding::Error> for Error {
    fn from(e: etsqp_encoding::Error) -> Self {
        Error::Encoding(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, Error>;
