//! Hot chunks: the per-series in-memory append buffer of the live
//! ingestion engine.
//!
//! A hot chunk accumulates incoming points for one series and **seals**
//! them into a checksummed [`Page`] (through the same delta-of-delta /
//! XOR codecs every flushed page uses) when either threshold is crossed:
//!
//! * **point count** — `page_points` buffered tuples (the §VI page size
//!   the pipelines are tuned for), or
//! * **time span** — the buffered range covers at least `seal_interval`
//!   time units (the Gorilla "2-hour block" discipline: bounded staleness
//!   for sealed-page pruning even on slow series).
//!
//! Unlike the old `SeriesWriter` + `drain_writer` pair, a hot chunk is
//! never consumed: sealing hands the encoded page out and keeps the
//! chunk alive with its codec configuration intact, so a store
//! configured for 100-point pages keeps producing 100-point pages
//! forever, an empty seal is a no-op rather than a tombstone, and a
//! failed seal leaves every buffered point (and the chunk itself)
//! untouched for retry.
//!
//! Queries never read the live buffers: [`HotChunk::snapshot`] clones
//! the buffered columns under the owning series lock into an immutable
//! [`HotIntSnapshot`] / [`HotFloatSnapshot`], giving readers a
//! point-in-time prefix of the append stream (see DESIGN.md §11 for the
//! consistency rules).

use std::sync::Arc;

use etsqp_encoding::{f64_to_ordered_i64, Encoding};

use crate::page::Page;
use crate::{Error, Result};

/// Checks `ts` against the newest timestamp the chunk knows about —
/// the buffered tail, or the last sealed point when the buffer is empty.
fn check_order(ts: i64, buffered_last: Option<i64>, sealed_last: Option<i64>) -> Result<()> {
    if let Some(last) = buffered_last.or(sealed_last) {
        if ts <= last {
            return Err(Error::OutOfOrder {
                last,
                attempted: ts,
            });
        }
    }
    Ok(())
}

/// Whether buffers spanning `[first, last]` with `len` points must seal.
fn should_seal(
    len: usize,
    first: i64,
    last: i64,
    page_points: usize,
    interval: Option<i64>,
) -> bool {
    if len >= page_points {
        return true;
    }
    match interval {
        // A span that overflows i64 is certainly wider than any interval.
        Some(dt) => last.checked_sub(first).is_none_or(|span| span >= dt),
        None => false,
    }
}

/// The integer-valued hot chunk.
#[derive(Debug)]
pub struct HotChunk {
    ts_encoding: Encoding,
    val_encoding: Encoding,
    page_points: usize,
    seal_interval: Option<i64>,
    ts: Vec<i64>,
    vals: Vec<i64>,
    last_sealed_ts: Option<i64>,
    /// Test-only fault injection: the next seal fails *before* touching
    /// any state, proving the error path preserves the chunk.
    #[cfg(test)]
    pub(crate) fail_next_seal: bool,
}

impl HotChunk {
    /// Creates an empty chunk with the series' codec configuration.
    pub fn new(
        ts_encoding: Encoding,
        val_encoding: Encoding,
        page_points: usize,
        seal_interval: Option<i64>,
    ) -> Self {
        assert!(page_points > 0, "page size must be positive");
        HotChunk {
            ts_encoding,
            val_encoding,
            page_points,
            seal_interval,
            ts: Vec::with_capacity(page_points),
            vals: Vec::with_capacity(page_points),
            last_sealed_ts: None,
            #[cfg(test)]
            fail_next_seal: false,
        }
    }

    /// Buffered (unsealed) point count.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends one point; timestamps must be strictly increasing across
    /// the whole series (buffered *and* previously sealed points).
    /// Returns the sealed page when this point crossed a threshold.
    pub fn push(&mut self, ts: i64, value: i64) -> Result<Option<Page>> {
        check_order(ts, self.ts.last().copied(), self.last_sealed_ts)?;
        self.ts.push(ts);
        self.vals.push(value);
        if should_seal(
            self.ts.len(),
            self.ts[0],
            ts,
            self.page_points,
            self.seal_interval,
        ) {
            return self.seal();
        }
        Ok(None)
    }

    /// Seals the buffer into a checksummed page; `None` when empty.
    /// On error the buffer and chunk state are unchanged.
    pub fn seal(&mut self) -> Result<Option<Page>> {
        if self.ts.is_empty() {
            return Ok(None);
        }
        #[cfg(test)]
        if self.fail_next_seal {
            self.fail_next_seal = false;
            return Err(Error::Misuse("injected seal failure"));
        }
        let page = Page::encode(&self.ts, &self.vals, self.ts_encoding, self.val_encoding)?;
        self.last_sealed_ts = Some(page.header.last_ts);
        self.ts.clear();
        self.vals.clear();
        Ok(Some(page))
    }

    /// Immutable copy of the buffered columns; `None` when empty.
    pub fn snapshot(&self) -> Option<HotIntSnapshot> {
        if self.ts.is_empty() {
            return None;
        }
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in &self.vals {
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
        Some(HotIntSnapshot {
            ts: Arc::new(self.ts.clone()),
            vals: Arc::new(self.vals.clone()),
            min_value: min_v,
            max_value: max_v,
            ts_encoding: self.ts_encoding,
            val_encoding: self.val_encoding,
        })
    }
}

/// The float-valued hot chunk (value codec is an XOR family codec).
#[derive(Debug)]
pub struct HotChunkF64 {
    ts_encoding: Encoding,
    val_encoding: Encoding,
    page_points: usize,
    seal_interval: Option<i64>,
    ts: Vec<i64>,
    vals: Vec<f64>,
    last_sealed_ts: Option<i64>,
}

impl HotChunkF64 {
    /// Creates an empty float chunk (`val_encoding` must be a float codec).
    pub fn new(
        ts_encoding: Encoding,
        val_encoding: Encoding,
        page_points: usize,
        seal_interval: Option<i64>,
    ) -> Self {
        assert!(page_points > 0, "page size must be positive");
        assert!(val_encoding.is_float(), "value codec must be a float codec");
        HotChunkF64 {
            ts_encoding,
            val_encoding,
            page_points,
            seal_interval,
            ts: Vec::with_capacity(page_points),
            vals: Vec::with_capacity(page_points),
            last_sealed_ts: None,
        }
    }

    /// Buffered (unsealed) point count.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends one float point; see [`HotChunk::push`].
    pub fn push(&mut self, ts: i64, value: f64) -> Result<Option<Page>> {
        check_order(ts, self.ts.last().copied(), self.last_sealed_ts)?;
        self.ts.push(ts);
        self.vals.push(value);
        if should_seal(
            self.ts.len(),
            self.ts[0],
            ts,
            self.page_points,
            self.seal_interval,
        ) {
            return self.seal();
        }
        Ok(None)
    }

    /// Seals the buffer into a checksummed page; `None` when empty.
    pub fn seal(&mut self) -> Result<Option<Page>> {
        if self.ts.is_empty() {
            return Ok(None);
        }
        let page = Page::encode_f64(&self.ts, &self.vals, self.ts_encoding, self.val_encoding)?;
        self.last_sealed_ts = Some(page.header.last_ts);
        self.ts.clear();
        self.vals.clear();
        Ok(Some(page))
    }

    /// Immutable copy of the buffered columns; `None` when empty.
    pub fn snapshot(&self) -> Option<HotFloatSnapshot> {
        if self.ts.is_empty() {
            return None;
        }
        let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
        for &v in &self.vals {
            let m = f64_to_ordered_i64(v);
            min_v = min_v.min(m);
            max_v = max_v.max(m);
        }
        Some(HotFloatSnapshot {
            ts: Arc::new(self.ts.clone()),
            vals: Arc::new(self.vals.clone()),
            min_value: min_v,
            max_value: max_v,
        })
    }
}

/// Either kind of hot chunk, as stored per series.
#[derive(Debug)]
pub enum Hot {
    /// Integer-valued series.
    Int(HotChunk),
    /// Float-valued series.
    Float(HotChunkF64),
}

impl Hot {
    /// Buffered point count of either kind.
    pub fn len(&self) -> usize {
        match self {
            Hot::Int(h) => h.len(),
            Hot::Float(h) => h.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seals either kind; `None` when empty.
    pub fn seal(&mut self) -> Result<Option<Page>> {
        match self {
            Hot::Int(h) => h.seal(),
            Hot::Float(h) => h.seal(),
        }
    }

    /// Snapshots either kind; `None` when empty.
    pub fn snapshot(&self) -> Option<HotSnapshot> {
        match self {
            Hot::Int(h) => h.snapshot().map(HotSnapshot::Int),
            Hot::Float(h) => h.snapshot().map(HotSnapshot::Float),
        }
    }
}

/// A point-in-time copy of an integer hot chunk's buffered columns.
///
/// Cheaply cloneable (`Arc` columns); exact `min/max` statistics are
/// computed at snapshot time, so §V-style pruning of the hot chunk uses
/// true bounds, not estimates.
#[derive(Debug, Clone)]
pub struct HotIntSnapshot {
    /// Buffered timestamps (strictly increasing).
    pub ts: Arc<Vec<i64>>,
    /// Buffered values, aligned with `ts`.
    pub vals: Arc<Vec<i64>>,
    /// Exact minimum of `vals`.
    pub min_value: i64,
    /// Exact maximum of `vals`.
    pub max_value: i64,
    /// The series' timestamp codec (used when materializing a page).
    pub ts_encoding: Encoding,
    /// The series' value codec (used when materializing a page).
    pub val_encoding: Encoding,
}

impl HotIntSnapshot {
    /// Buffered point count (never zero — empty chunks snapshot to `None`).
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the snapshot is empty (never true by construction; kept
    /// for clippy's `len`-without-`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Encodes the snapshot into a transient checksummed page with the
    /// series' own codecs — the materialization the binary-operator
    /// pipelines use so partitioned merges see hot data as one more page.
    pub fn to_page(&self) -> Result<Page> {
        Page::encode(&self.ts, &self.vals, self.ts_encoding, self.val_encoding)
    }
}

/// A point-in-time copy of a float hot chunk's buffered columns.
#[derive(Debug, Clone)]
pub struct HotFloatSnapshot {
    /// Buffered timestamps (strictly increasing).
    pub ts: Arc<Vec<i64>>,
    /// Buffered values, aligned with `ts`.
    pub vals: Arc<Vec<f64>>,
    /// Exact minimum in the order-preserving `f64 → i64` mapped domain.
    pub min_value: i64,
    /// Exact maximum in the mapped domain.
    pub max_value: i64,
}

impl HotFloatSnapshot {
    /// Buffered point count (never zero — empty chunks snapshot to `None`).
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// See [`HotIntSnapshot::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// A snapshot of either kind of hot chunk.
#[derive(Debug, Clone)]
pub enum HotSnapshot {
    /// Integer-valued series.
    Int(HotIntSnapshot),
    /// Float-valued series.
    Float(HotFloatSnapshot),
}

impl HotSnapshot {
    /// Buffered point count of either kind.
    pub fn len(&self) -> usize {
        match self {
            HotSnapshot::Int(h) => h.len(),
            HotSnapshot::Float(h) => h.len(),
        }
    }

    /// Whether the snapshot is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(page_points: usize, interval: Option<i64>) -> HotChunk {
        HotChunk::new(Encoding::Ts2Diff, Encoding::Ts2Diff, page_points, interval)
    }

    #[test]
    fn seals_at_point_count() {
        let mut h = chunk(4, None);
        for i in 0..3i64 {
            assert!(h.push(i, i * 10).unwrap().is_none());
        }
        let page = h.push(3, 30).unwrap().expect("4th point seals");
        assert_eq!(page.header.count, 4);
        assert!(h.is_empty());
        // The chunk keeps producing 4-point pages forever (the old
        // drain_writer bug reset the size to DEFAULT_PAGE_POINTS here).
        for i in 4..7i64 {
            assert!(h.push(i, 0).unwrap().is_none());
        }
        let page = h.push(7, 0).unwrap().expect("second seal at 4 points");
        assert_eq!(page.header.count, 4);
    }

    #[test]
    fn seals_at_time_span() {
        let mut h = chunk(1_000_000, Some(100));
        assert!(h.push(0, 1).unwrap().is_none());
        assert!(h.push(50, 2).unwrap().is_none());
        // span 0..=100 >= 100 -> seal, far below the point threshold.
        let page = h.push(100, 3).unwrap().expect("interval seal");
        assert_eq!(page.header.count, 3);
        assert_eq!(page.header.last_ts, 100);
    }

    #[test]
    fn rejects_out_of_order_across_seal_boundary() {
        let mut h = chunk(2, None);
        h.push(10, 0).unwrap();
        assert!(h.push(20, 0).unwrap().is_some());
        assert!(h.is_empty());
        // Even with an empty buffer, the chunk remembers the sealed tail.
        assert!(matches!(
            h.push(20, 0),
            Err(Error::OutOfOrder {
                last: 20,
                attempted: 20
            })
        ));
        assert!(h.push(21, 0).unwrap().is_none());
    }

    #[test]
    fn empty_seal_is_noop_and_chunk_survives() {
        let mut h = chunk(8, None);
        assert!(h.seal().unwrap().is_none());
        assert!(h.seal().unwrap().is_none());
        // The old store turned this state into a permanent
        // Misuse("series sealed"); the chunk must stay writable.
        assert!(h.push(1, 1).unwrap().is_none());
        let page = h.seal().unwrap().expect("one buffered point");
        assert_eq!(page.header.count, 1);
    }

    #[test]
    fn failed_seal_preserves_buffer_and_chunk() {
        let mut h = chunk(8, None);
        h.push(1, 10).unwrap();
        h.push(2, 20).unwrap();
        h.fail_next_seal = true;
        assert!(matches!(h.seal(), Err(Error::Misuse(_))));
        // Error path: nothing lost, nothing sealed, chunk still usable.
        assert_eq!(h.len(), 2);
        assert!(h.push(3, 30).unwrap().is_none());
        let page = h.seal().unwrap().expect("retry succeeds");
        assert_eq!(page.header.count, 3);
        let (ts, vals) = page.decode().unwrap();
        assert_eq!(ts, vec![1, 2, 3]);
        assert_eq!(vals, vec![10, 20, 30]);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let mut h = chunk(100, None);
        h.push(1, 5).unwrap();
        h.push(2, -3).unwrap();
        let snap = h.snapshot().expect("non-empty");
        assert_eq!(snap.min_value, -3);
        assert_eq!(snap.max_value, 5);
        h.push(3, 100).unwrap();
        // The earlier snapshot is unaffected by later appends.
        assert_eq!(snap.len(), 2);
        assert_eq!(*snap.vals, vec![5, -3]);
        assert_eq!(h.snapshot().unwrap().len(), 3);
    }

    #[test]
    fn snapshot_to_page_roundtrips() {
        let mut h = chunk(100, None);
        for i in 0..17i64 {
            h.push(i * 3, i * i).unwrap();
        }
        let snap = h.snapshot().unwrap();
        let page = snap.to_page().unwrap();
        page.verify().unwrap();
        let (ts, vals) = page.decode().unwrap();
        assert_eq!(ts, *snap.ts);
        assert_eq!(vals, *snap.vals);
    }

    #[test]
    fn float_chunk_seals_and_snapshots() {
        let mut h = HotChunkF64::new(Encoding::Ts2Diff, Encoding::Chimp, 3, None);
        assert!(h.push(0, 1.5).unwrap().is_none());
        assert!(h.push(1, -2.5).unwrap().is_none());
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.min_value, f64_to_ordered_i64(-2.5));
        assert_eq!(snap.max_value, f64_to_ordered_i64(1.5));
        let page = h.push(2, 9.0).unwrap().expect("3rd point seals");
        let (_, vals) = page.decode_f64().unwrap();
        assert_eq!(vals, vec![1.5, -2.5, 9.0]);
        assert!(matches!(h.push(2, 0.0), Err(Error::OutOfOrder { .. })));
    }
}
