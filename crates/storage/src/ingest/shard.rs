//! The sharded series map: N independent `RwLock<BTreeMap>` shards keyed
//! by series-name hash, each entry a per-series mutex.
//!
//! This is the Gorilla TSmap shape (Pelkonen et al., VLDB 2015): lookups
//! take one shard **read** lock (shared — appenders to different series
//! in the same shard do not serialize on the map) plus the one
//! per-series mutex; only series creation takes a shard write lock. With
//! the default 64 shards, millions of series ingest in parallel without
//! a store-wide lock convoy — the old single `RwLock<BTreeMap>` write-
//! locked the entire store on every single `append`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ingest::hot::Hot;
use crate::page::Page;

/// Default shard count (power of two; tuned for "many cores hammering
/// many series", not memory — an empty shard is one lock and one map).
pub const DEFAULT_SHARDS: usize = 64;

/// Lockdep class of every shard-map `RwLock` (see DESIGN.md §13: the
/// declared order is shard → series → nothing).
pub const LOCK_CLASS_SHARD: &str = "storage.shard";
/// Lockdep class of every per-series state mutex.
pub const LOCK_CLASS_SERIES: &str = "storage.series";

/// Everything the store knows about one series, behind its own mutex.
#[derive(Debug, Default)]
pub struct SeriesState {
    /// Sealed, immutable, checksummed pages in time order.
    pub pages: Vec<Arc<Page>>,
    /// The live append buffer; `None` for page-only series (loaded from
    /// a TsFile or inserted pre-encoded).
    pub hot: Option<Hot>,
}

/// One series entry: the mutex is held for the duration of an append
/// batch, a seal, or a snapshot — never across shard-map operations.
#[derive(Debug, Default)]
pub struct SeriesCell {
    /// The series state (pages + hot chunk).
    pub state: Mutex<SeriesState>,
}

struct Shard {
    map: RwLock<BTreeMap<String, Arc<SeriesCell>>>,
}

/// FNV-1a over the series name — stable, allocation-free, and good
/// enough to spread names across a power-of-two shard count.
fn shard_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Fold the high bits down so masking with a small shard count still
    // sees the whole hash.
    h ^ (h >> 32)
}

/// The sharded name → series map.
pub struct ShardMap {
    shards: Box<[Shard]>,
    mask: u64,
}

impl ShardMap {
    /// Creates a map with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> Self {
        // Seed the declared lock order: a shard guard is always dropped
        // before the series mutex is taken (see `get`), so the edge
        // would never be observed from nesting — declare it instead, so
        // an inverted series → shard acquisition anywhere panics.
        #[cfg(feature = "lockdep")]
        parking_lot::lockdep::declare_order(LOCK_CLASS_SHARD, LOCK_CLASS_SERIES);
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<Shard> = (0..n)
            .map(|_| Shard {
                map: RwLock::with_class(BTreeMap::new(), LOCK_CLASS_SHARD),
            })
            .collect();
        ShardMap {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, name: &str) -> &Shard {
        let idx = (shard_hash(name) & self.mask) as usize;
        // Masked index is always in range; avoid the panicking indexer in
        // this hot path.
        self.shards.get(idx).unwrap_or(&self.shards[0])
    }

    /// Looks up a series cell (shard read lock only).
    pub fn get(&self, name: &str) -> Option<Arc<SeriesCell>> {
        self.shard_of(name).map.read().get(name).cloned()
    }

    /// Returns the cell for `name`, inserting `init()` if absent
    /// (shard write lock; existing cells are returned untouched, making
    /// series creation idempotent).
    pub fn get_or_insert(&self, name: &str, init: impl FnOnce() -> SeriesState) -> Arc<SeriesCell> {
        let shard = self.shard_of(name);
        if let Some(cell) = shard.map.read().get(name) {
            return Arc::clone(cell);
        }
        let mut map = shard.map.write();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(SeriesCell {
                state: Mutex::with_class(init(), LOCK_CLASS_SERIES),
            })
        }))
    }

    /// All series names, globally sorted (each shard's BTreeMap is
    /// sorted; the cross-shard collection is merged by a final sort so
    /// callers see the same deterministic order the old single map gave).
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.map.read().keys().cloned());
        }
        out.sort_unstable();
        out
    }
}

impl std::fmt::Debug for ShardMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardMap::new(0).shard_count(), 1);
        assert_eq!(ShardMap::new(1).shard_count(), 1);
        assert_eq!(ShardMap::new(3).shard_count(), 4);
        assert_eq!(ShardMap::new(64).shard_count(), 64);
    }

    #[test]
    fn names_are_globally_sorted() {
        let map = ShardMap::new(8);
        for name in ["zeta", "alpha", "mid", "beta.7", "beta.12"] {
            map.get_or_insert(name, SeriesState::default);
        }
        let names = map.names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let map = ShardMap::new(4);
        let a = map.get_or_insert("s", SeriesState::default);
        let b = map.get_or_insert("s", SeriesState::default);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(map.get("missing").is_none());
    }

    #[test]
    fn many_series_spread_over_shards() {
        let map = ShardMap::new(16);
        for i in 0..256 {
            map.get_or_insert(&format!("sensor.{i}"), SeriesState::default);
        }
        assert_eq!(map.names().len(), 256);
        // The hash must actually use more than one shard.
        let used: std::collections::BTreeSet<u64> = (0..256)
            .map(|i| shard_hash(&format!("sensor.{i}")) & map.mask)
            .collect();
        assert!(used.len() > 8, "hash collapsed to {} shards", used.len());
    }
}
