//! The live ingestion engine: sharded series map + per-series hot chunks.
//!
//! This module replaces the old single `RwLock<BTreeMap>` write path with
//! the two-level structure of Gorilla (Pelkonen et al., VLDB 2015):
//!
//! 1. [`shard::ShardMap`] — series names hash (FNV-1a) into one of N
//!    shards, each an independent `RwLock<BTreeMap>`; appends take a
//!    shard **read** lock plus one per-series mutex, so writers to
//!    different series never contend on a global lock.
//! 2. [`hot::HotChunk`] / [`hot::HotChunkF64`] — each series owns a live
//!    append buffer that seals into a checksummed [`crate::page::Page`]
//!    at a point-count or time-span threshold, keeping its codec
//!    configuration for the life of the series.
//!
//! Readers get consistency from [`hot::HotChunk::snapshot`]: a query
//! takes the series mutex once, copies `(sealed pages, hot columns)` as
//! one atomic pair, and then runs entirely on immutable data. See
//! DESIGN.md §11 for the full consistency argument.

pub mod hot;
pub mod shard;

pub use hot::{Hot, HotChunk, HotChunkF64, HotFloatSnapshot, HotIntSnapshot, HotSnapshot};
pub use shard::{SeriesCell, SeriesState, ShardMap, DEFAULT_SHARDS};
