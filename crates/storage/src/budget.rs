//! Memory budgeting (paper §VI-C, "Memory management"): IoT series can be
//! arbitrarily long, so pipelines load and decode pages *gradually*,
//! bounded by a byte budget. Worker threads acquire budget before
//! materializing a decoded page and release it when the page's vectors
//! are consumed; acquisition blocks (never fails) so pipelines degrade to
//! gradual loading instead of exhausting memory.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Inner {
    capacity: u64,
    used: Mutex<u64>,
    freed: Condvar,
}

/// A shared byte budget for decoded page data.
#[derive(Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBudget")
            .field("capacity", &self.inner.capacity)
            .field("used", &*self.inner.used.lock())
            .finish()
    }
}

impl MemoryBudget {
    /// Creates a budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                capacity,
                used: Mutex::new(0),
                freed: Condvar::new(),
            }),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        *self.inner.used.lock()
    }

    /// Blocks until `bytes` can be reserved, then reserves them and
    /// returns a guard that releases on drop. Requests larger than the
    /// whole capacity are granted when the budget is otherwise empty
    /// (single oversized pages must still be processable).
    pub fn acquire(&self, bytes: u64) -> BudgetGuard {
        let mut used = self.inner.used.lock();
        loop {
            let fits = *used + bytes <= self.inner.capacity;
            let oversized_ok = bytes > self.inner.capacity && *used == 0;
            if fits || oversized_ok {
                *used += bytes;
                return BudgetGuard {
                    budget: self.clone(),
                    bytes,
                };
            }
            self.inner.freed.wait(&mut used);
        }
    }

    /// Non-blocking reserve; `None` when it would exceed the budget.
    pub fn try_acquire(&self, bytes: u64) -> Option<BudgetGuard> {
        let mut used = self.inner.used.lock();
        if *used + bytes <= self.inner.capacity || (bytes > self.inner.capacity && *used == 0) {
            *used += bytes;
            Some(BudgetGuard {
                budget: self.clone(),
                bytes,
            })
        } else {
            None
        }
    }

    fn release(&self, bytes: u64) {
        let mut used = self.inner.used.lock();
        *used = used.saturating_sub(bytes);
        drop(used);
        self.inner.freed.notify_all();
    }
}

/// RAII reservation on a [`MemoryBudget`].
pub struct BudgetGuard {
    budget: MemoryBudget,
    bytes: u64,
}

impl BudgetGuard {
    /// Reserved size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

impl std::fmt::Debug for BudgetGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BudgetGuard({} bytes)", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn acquire_and_release_track_usage() {
        let b = MemoryBudget::new(1000);
        let g1 = b.acquire(400);
        assert_eq!(b.used(), 400);
        let g2 = b.acquire(600);
        assert_eq!(b.used(), 1000);
        drop(g1);
        assert_eq!(b.used(), 600);
        drop(g2);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn try_acquire_refuses_over_budget() {
        let b = MemoryBudget::new(100);
        let _g = b.acquire(80);
        assert!(b.try_acquire(30).is_none());
        assert!(b.try_acquire(20).is_some());
    }

    #[test]
    fn oversized_request_granted_when_empty() {
        let b = MemoryBudget::new(10);
        let g = b.acquire(1000); // must not deadlock
        assert_eq!(b.used(), 1000);
        drop(g);
        assert!(b.try_acquire(5).is_some());
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let b = MemoryBudget::new(100);
        let g = b.acquire(100);
        let b2 = b.clone();
        let handle = std::thread::spawn(move || {
            let _g = b2.acquire(50); // blocks until main releases
            b2.used()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(g);
        let used_inside = handle.join().unwrap();
        assert_eq!(used_inside, 50);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn unlimited_never_blocks() {
        let b = MemoryBudget::unlimited();
        let _gs: Vec<_> = (0..100).map(|_| b.acquire(u64::MAX / 256)).collect();
    }
}
