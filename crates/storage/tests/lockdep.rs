//! Lockdep inversion tests (run via `cargo test -p etsqp-storage
//! --features lockdep`, a dedicated gating CI job).
//!
//! The ingest path's declared order is shard → series: [`ShardMap`]
//! seeds the edge at construction, so acquiring a shard lock *while
//! holding* a series mutex must panic with the cycle — that schedule is
//! the one a real deadlock needs, and lockdep turns it into a
//! deterministic failure instead of a hung test run.

#![cfg(feature = "lockdep")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use etsqp_storage::ingest::{SeriesState, ShardMap};

#[test]
fn declared_order_admits_the_normal_ingest_schedule() {
    let map = ShardMap::new(8);
    for name in ["a", "b", "c"] {
        let cell = map.get_or_insert(name, SeriesState::default);
        // Shard guard (inside get/get_or_insert) is released before the
        // series mutex is taken: the declared shard → series order.
        let state = cell.state.lock();
        assert!(state.pages.is_empty());
        drop(state);
    }
    assert_eq!(map.names().len(), 3);
}

#[test]
fn inverted_series_then_shard_acquisition_panics() {
    let map = ShardMap::new(8);
    let cell = map.get_or_insert("inverted", SeriesState::default);

    let result = catch_unwind(AssertUnwindSafe(|| {
        // Hold the series mutex, then take a shard lock: the inverse of
        // the declared order. `names()` read-locks every shard.
        let _state = cell.state.lock();
        let _ = map.names();
    }));

    let payload = result.expect_err("inverted acquisition must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("lockdep") && msg.contains("storage.shard") && msg.contains("storage.series"),
        "panic must name the inverted classes, got: {msg}"
    );
}

#[test]
fn full_store_ingest_runs_clean_under_lockdep() {
    // The public write path (create/append/flush/snapshot) must not trip
    // the tracker: its guards nest in declared order or not at all.
    use etsqp_encoding::Encoding;
    use etsqp_storage::store::SeriesStore;

    let store = SeriesStore::new(64);
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    let ts: Vec<i64> = (0..200).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..200).map(|i| 7 + (i % 13)).collect();
    store.append_all("s", &ts, &vals).unwrap();
    store.flush("s").unwrap();
    store.append("s", 5000, 1).unwrap();
    let names = store.series_names();
    assert_eq!(names, vec!["s".to_string()]);
}
