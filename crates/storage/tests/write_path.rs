//! Write-path regression suite for the live-ingestion engine.
//!
//! Pins the three bugs of the old `SeriesWriter` + `drain_writer` store
//! at the public-API level:
//!
//! 1. the configured `page_points` silently reset to the default after
//!    the first flush (every later page came out 1024 points);
//! 2. flushing a series that had never sealed a page dropped the writer
//!    (`data.writer = None`), permanently "sealing" the series — every
//!    later append failed with `Misuse`;
//! 3. `append_all` released the store lock between buffering and
//!    draining, so a concurrent `flush` could force-seal a short page
//!    out of the middle of a batch.
//!
//! The seal-error recovery half of bug 2 (a failed `finish()` after
//! `writer.take()` also tombstoned the series) is pinned at the unit
//! level in `ingest::hot::tests::failed_seal_preserves_buffer_and_chunk`
//! via fault injection, since real codec encodes are infallible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use etsqp_encoding::Encoding;
use etsqp_storage::store::{SeriesStore, StoreOptions};
use etsqp_storage::Error;

fn int_store(page_points: usize) -> SeriesStore {
    let store = SeriesStore::new(page_points);
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store
}

/// Bug 1: a `SeriesStore::new(100)` must keep producing 100-point pages
/// forever, across any number of flushes.
#[test]
fn page_size_stays_configured_across_flushes() {
    let store = int_store(100);
    let mut next_ts = 0i64;
    for round in 0..5 {
        let ts: Vec<i64> = (0..250).map(|i| next_ts + i).collect();
        let vals: Vec<i64> = (0..250).collect();
        store.append_all("s", &ts, &vals).unwrap();
        next_ts += 250;
        store.flush("s").unwrap();
        let pages = store.peek_pages("s").unwrap();
        // Each round: two full 100-point pages + one short 50-point page.
        assert_eq!(pages.len(), 3 * (round + 1), "round {round}");
    }
    let counts: Vec<u32> = store
        .peek_pages("s")
        .unwrap()
        .iter()
        .map(|p| p.header.count)
        .collect();
    for (i, &c) in counts.iter().enumerate() {
        let want = if i % 3 == 2 { 50 } else { 100 };
        assert_eq!(c, want, "page {i} of {counts:?}");
    }
}

/// Bug 2: flushing an empty, never-written series must be a no-op that
/// leaves the series writable — not a permanent tombstone.
#[test]
fn empty_flush_then_append_works() {
    let store = int_store(64);
    store.flush("s").unwrap();
    store.flush("s").unwrap();
    store.append("s", 1, 10).unwrap();
    store.flush("s").unwrap();
    assert_eq!(store.point_count("s").unwrap(), 1);
    // And again after a real flush cycle.
    store.flush("s").unwrap();
    store.append("s", 2, 20).unwrap();
    store.flush("s").unwrap();
    assert_eq!(store.point_count("s").unwrap(), 2);
}

/// Bug 3: a batch append is atomic against concurrent flushes — no short
/// page can be sealed out of the middle of one `append_all`.
#[test]
fn append_all_is_atomic_against_concurrent_flush() {
    let store = SeriesStore::with_options(StoreOptions {
        page_points: 256,
        shards: 8,
        seal_interval: None,
    });
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    let stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.flush("s").unwrap();
            }
        })
    };
    const N: i64 = 100_000;
    let ts: Vec<i64> = (0..N).collect();
    let vals: Vec<i64> = (0..N).map(|i| i % 997).collect();
    store.append_all("s", &ts, &vals).unwrap();
    stop.store(true, Ordering::Relaxed);
    flusher.join().unwrap();
    store.flush("s").unwrap();

    let pages = store.peek_pages("s").unwrap();
    let total: u64 = pages.iter().map(|p| p.header.count as u64).sum();
    assert_eq!(total, N as u64, "no point lost or duplicated");
    // The batch seals only full 256-point pages; the single short page
    // (the final 100_000 % 256 tail) can only come from the tail flush.
    // The old racy drain allowed a concurrent flush to cut arbitrary
    // short pages mid-batch.
    let short: Vec<u32> = pages
        .iter()
        .map(|p| p.header.count)
        .filter(|&c| c != 256)
        .collect();
    assert!(
        short.len() <= 1,
        "concurrent flush sliced short pages out of one batch: {short:?}"
    );
    if let Some(&tail) = short.first() {
        assert_eq!(tail, (N % 256) as u32);
        assert_eq!(pages.last().unwrap().header.count, tail, "tail page only");
    }
}

/// Many threads appending to disjoint series while another thread
/// snapshots: every snapshot must be a consistent prefix (sealed pages
/// all full, sealed + hot monotone per series), and nothing deadlocks
/// on the sharded map.
#[test]
fn parallel_appenders_with_concurrent_snapshots() {
    const WRITERS: usize = 8;
    const POINTS: i64 = 5_000;
    let store = SeriesStore::with_options(StoreOptions {
        page_points: 128,
        shards: 4, // fewer shards than writers: shards are shared
        seal_interval: None,
    });
    for w in 0..WRITERS {
        store.create_series(&format!("s{w}"), Encoding::Ts2Diff, Encoding::Ts2Diff);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_seen = [0u64; WRITERS];
            while !stop.load(Ordering::Relaxed) {
                for (w, last) in last_seen.iter_mut().enumerate() {
                    let snap = store.snapshot(&format!("s{w}")).unwrap();
                    let sealed: u64 = snap.pages.iter().map(|p| p.header.count as u64).sum();
                    let hot = snap.hot.as_ref().map_or(0, |h| h.len() as u64);
                    let seen = sealed + hot;
                    assert!(seen >= *last, "snapshot went backwards: {seen} < {last}");
                    assert!(
                        snap.pages.iter().all(|p| p.header.count == 128),
                        "sealed page not full under pure appends"
                    );
                    *last = seen;
                }
            }
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            std::thread::spawn(move || {
                let name = format!("s{w}");
                for i in 0..POINTS {
                    store.append(&name, i, i * w as i64).unwrap();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();
    for w in 0..WRITERS {
        let name = format!("s{w}");
        let total =
            store.point_count(&name).unwrap() + store.buffered_points(&name).unwrap() as u64;
        assert_eq!(total, POINTS as u64);
    }
}

/// Type confusion between int and float series stays a typed error and
/// never tombstones the series.
#[test]
fn type_misuse_is_recoverable() {
    let store = SeriesStore::new(32);
    store.create_series("i", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.create_series_f64("f", Encoding::Ts2Diff, Encoding::Chimp);
    assert!(matches!(
        store.append_f64("i", 1, 1.0),
        Err(Error::Misuse(_))
    ));
    assert!(matches!(store.append("f", 1, 1), Err(Error::Misuse(_))));
    // The failed calls must not have damaged either series.
    store.append("i", 1, 1).unwrap();
    store.append_f64("f", 1, 1.0).unwrap();
    store.flush("i").unwrap();
    store.flush("f").unwrap();
    assert_eq!(store.point_count("i").unwrap(), 1);
    assert_eq!(store.point_count("f").unwrap(), 1);
}

/// Out-of-order rejection holds across seal boundaries: after a page
/// seals, the next append must still be after the sealed tail.
#[test]
fn out_of_order_rejected_across_seal() {
    let store = int_store(4);
    for i in 0..4 {
        store.append("s", i, 0).unwrap();
    }
    assert_eq!(store.page_count("s").unwrap(), 1, "sealed at 4 points");
    assert!(matches!(
        store.append("s", 3, 0),
        Err(Error::OutOfOrder { last: 3, .. })
    ));
    store.append("s", 4, 0).unwrap();
}

/// Time-based sealing: with a `seal_interval`, a slow series seals a
/// short page once its buffered span reaches the interval.
#[test]
fn seal_interval_bounds_staleness() {
    let store = SeriesStore::with_options(StoreOptions {
        page_points: 1_000_000,
        shards: 1,
        seal_interval: Some(1_000),
    });
    store.create_series("slow", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.append("slow", 0, 1).unwrap();
    store.append("slow", 500, 2).unwrap();
    assert_eq!(store.page_count("slow").unwrap(), 0);
    store.append("slow", 1_000, 3).unwrap(); // span hits the interval
    assert_eq!(store.page_count("slow").unwrap(), 1);
    assert_eq!(store.buffered_points("slow").unwrap(), 0);
    assert_eq!(store.point_count("slow").unwrap(), 3);
}
