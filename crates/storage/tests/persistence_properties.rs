//! Property tests for the storage layer: arbitrary series must survive
//! page encode/decode and the full TsFile round-trip, for both integer
//! and float columns, under every page size.

use etsqp_encoding::Encoding;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;
use etsqp_storage::tsfile;
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((1i64..10_000, any::<i32>()), 1..400).prop_map(|steps| {
        let mut t = 0i64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                t += dt;
                (t, v as i64)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn store_roundtrips_arbitrary_series(
        pts in points(),
        page_points in prop_oneof![Just(1usize), Just(3), Just(64), Just(1024)],
        enc_idx in 0usize..4,
    ) {
        let enc = [Encoding::Ts2Diff, Encoding::DeltaRle, Encoding::Sprintz, Encoding::Gorilla][enc_idx];
        let store = SeriesStore::new(page_points);
        store.create_series("s", Encoding::Ts2Diff, enc);
        for &(t, v) in &pts {
            store.append("s", t, v).unwrap();
        }
        store.flush("s").unwrap();
        prop_assert_eq!(store.point_count("s").unwrap(), pts.len() as u64);
        let mut got = Vec::new();
        for page in store.peek_pages("s").unwrap() {
            let (ts, vals) = page.decode().unwrap();
            got.extend(ts.into_iter().zip(vals));
        }
        prop_assert_eq!(got, pts);
    }

    #[test]
    fn tsfile_roundtrips_mixed_series(
        pts in points(),
        floats in proptest::collection::vec(any::<f32>(), 1..200),
    ) {
        let store = SeriesStore::new(128);
        store.create_series("ints", Encoding::Ts2Diff, Encoding::Ts2Diff);
        for &(t, v) in &pts {
            store.append("ints", t, v).unwrap();
        }
        store.create_series_f64("floats", Encoding::Ts2Diff, Encoding::Chimp);
        for (i, &f) in floats.iter().enumerate() {
            store.append_f64("floats", i as i64, f as f64).unwrap();
        }
        store.flush("ints").unwrap();
        store.flush("floats").unwrap();

        let dir = std::env::temp_dir().join("etsqp_persistence_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prop_{}.etsqp", std::process::id()));
        tsfile::write(&store, &path).unwrap();
        let back = tsfile::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Integer column identical.
        let mut got = Vec::new();
        for page in back.peek_pages("ints").unwrap() {
            let (ts, vals) = page.decode().unwrap();
            got.extend(ts.into_iter().zip(vals));
        }
        prop_assert_eq!(got, pts);
        // Float column bit-identical.
        let mut fgot: Vec<f64> = Vec::new();
        for page in back.peek_pages("floats").unwrap() {
            let (_, vals) = page.decode_f64().unwrap();
            fgot.extend(vals);
        }
        prop_assert_eq!(fgot.len(), floats.len());
        for (a, &b) in fgot.iter().zip(&floats) {
            prop_assert_eq!(a.to_bits(), (b as f64).to_bits());
        }
    }

    #[test]
    fn page_images_roundtrip(pts in points()) {
        let (ts, vals): (Vec<i64>, Vec<i64>) = pts.into_iter().unzip();
        let page = Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Sprintz).unwrap();
        let image = page.to_bytes();
        let (back, used) = Page::from_bytes(&image).unwrap();
        prop_assert_eq!(used, image.len());
        prop_assert_eq!(back.decode().unwrap(), (ts, vals));
    }
}
