//! Instrumented synchronisation primitives (loom-style API).
//!
//! Inside a model each operation is a scheduling point; outside a model
//! every type degrades to its plain `std::sync` counterpart (poison-free),
//! so code compiled against these types still works in ordinary tests.

use crate::sched;

pub use std::sync::Arc;

/// Mutex whose lock/unlock/try_lock are scheduling points under a model.
pub struct Mutex<T> {
    rid: usize,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releasing it is a scheduling point under a model.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new instrumented mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            rid: sched::next_rid(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the mutex, blocking the (model) thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(me) = sched::tid() {
            sched::global().mutex_lock(self.rid, me);
        }
        // Under a model the scheduler has granted logical ownership, so
        // the std lock below is uncontended by construction.
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some(me) = sched::tid() {
            if sched::global().mutex_try_lock(self.rid, me) {
                let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Some(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                })
            } else {
                None
            }
        } else {
            match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the logical one: once the
        // scheduler hands the mutex to another model thread, the std
        // lock must already be free.
        drop(self.inner.take());
        if let Some(me) = sched::tid() {
            sched::global().mutex_release(self.lock.rid, me);
        }
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    cid: usize,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new instrumented condvar.
    pub fn new() -> Self {
        Condvar {
            cid: sched::next_rid(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases the guard's mutex, blocks until notified, reacquires.
    /// (parking_lot-style signature: the guard is updated in place.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(me) = sched::tid() {
            drop(guard.inner.take());
            sched::global().condvar_wait(self.cid, guard.lock.rid, me);
            guard.inner = Some(guard.lock.inner.lock().unwrap_or_else(|e| e.into_inner()));
        } else {
            let g = guard.inner.take().expect("guard present until drop");
            let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
            guard.inner = Some(g);
        }
    }

    /// Wakes one waiter (the lowest-id blocked model thread).
    pub fn notify_one(&self) {
        if let Some(me) = sched::tid() {
            sched::global().condvar_notify(self.cid, me, false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some(me) = sched::tid() {
            sched::global().condvar_notify(self.cid, me, true);
        } else {
            self.inner.notify_all();
        }
    }
}

/// Instrumented atomics: every operation is a scheduling point.
pub mod atomic {
    use crate::sched;

    pub use std::sync::atomic::Ordering;

    fn point() {
        if let Some(me) = sched::tid() {
            sched::global().yield_branch(me);
        }
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
            $(#[$doc])*
            #[derive(Default, Debug)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $ty) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// Instrumented load.
                pub fn load(&self, o: Ordering) -> $ty {
                    point();
                    self.inner.load(o)
                }

                /// Instrumented store.
                pub fn store(&self, v: $ty, o: Ordering) {
                    point();
                    self.inner.store(v, o)
                }

                /// Instrumented swap.
                pub fn swap(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.swap(v, o)
                }

                /// Instrumented fetch_add.
                pub fn fetch_add(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_add(v, o)
                }

                /// Instrumented fetch_sub.
                pub fn fetch_sub(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_sub(v, o)
                }

                /// Instrumented compare_exchange.
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    point();
                    self.inner.compare_exchange(cur, new, ok, err)
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    int_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented `AtomicI64`.
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64
    );

    /// Instrumented `AtomicBool`.
    #[derive(Default, Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic bool.
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Instrumented load.
        pub fn load(&self, o: Ordering) -> bool {
            point();
            self.inner.load(o)
        }

        /// Instrumented store.
        pub fn store(&self, v: bool, o: Ordering) {
            point();
            self.inner.store(v, o)
        }

        /// Instrumented swap.
        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            point();
            self.inner.swap(v, o)
        }

        /// Instrumented compare_exchange.
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            point();
            self.inner.compare_exchange(cur, new, ok, err)
        }
    }
}
