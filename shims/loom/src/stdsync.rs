//! `std::sync`-shaped wrappers over the instrumented primitives.
//!
//! Code written against `std::sync::{Arc, Mutex}` (e.g. the lock-based
//! deques in `shims/crossbeam`) can switch to the model-checked versions
//! with a single cfg'd `use`, keeping `.lock().unwrap()` / `try_lock()`
//! call sites unchanged:
//!
//! ```ignore
//! #[cfg(not(feature = "model"))]
//! use std::sync::{Arc, Mutex};
//! #[cfg(feature = "model")]
//! use loom::stdsync::{Arc, Mutex};
//! ```

pub use std::sync::Arc;

pub use crate::sync::MutexGuard;

/// Error mirroring `std::sync::TryLockError::WouldBlock`; the shim
/// mutexes are poison-free, so this is the only `try_lock` error.
#[derive(Debug)]
pub struct WouldBlock;

/// Placeholder for `std::sync::PoisonError`; never actually produced
/// (the shim is poison-free) but keeps `lock().unwrap()` compiling.
#[derive(Debug)]
pub struct PoisonError;

/// `std::sync::Mutex`-shaped wrapper over [`crate::sync::Mutex`].
pub struct Mutex<T>(crate::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(crate::sync::Mutex::new(value))
    }

    /// Acquires the mutex. Always `Ok`: the shim is poison-free.
    #[allow(clippy::result_large_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError> {
        Ok(self.0.lock())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, WouldBlock> {
        self.0.try_lock().ok_or(WouldBlock)
    }

    /// Consumes the mutex, returning the inner value.
    #[allow(clippy::result_large_err)]
    pub fn into_inner(self) -> Result<T, PoisonError> {
        Ok(self.0.into_inner())
    }
}
