//! The cooperative scheduler at the heart of the model checker.
//!
//! Every instrumented primitive (mutex, condvar, atomic, spawn/join)
//! funnels through a *scheduling point*: the calling thread takes the
//! scheduler lock, picks the next thread to run, and parks until it is
//! chosen again. Exactly one model thread is runnable at any instant, so
//! an execution is fully described by the sequence of choices made at
//! points where more than one thread was eligible. The driver
//! ([`crate::Builder`]) replays recorded choice prefixes to explore the
//! schedule tree depth-first, then optionally samples random schedules.

use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Sentinel "no thread" id.
pub(crate) const NO_THREAD: usize = usize::MAX;

/// Panic payload used to silently unwind model threads once an execution
/// has already failed (deadlock, assertion in a sibling thread, ...).
pub(crate) struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockedOn {
    Mutex(usize),
    Condvar(usize),
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

struct Th {
    status: Status,
    /// Fairness bit: set by `yield_now` and failed `try_lock`; a yielded
    /// thread is not eligible again until every other runnable thread has
    /// been scheduled (prevents unbounded try-lock retry subtrees).
    yielded: bool,
}

/// One recorded decision: which of `alts` eligible threads ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Index of the chosen thread within the eligible set.
    pub rank: usize,
    /// Size of the eligible set at this decision point.
    pub alts: usize,
}

#[derive(Default)]
struct Exec {
    active: bool,
    threads: Vec<Th>,
    current: usize,
    /// Logical mutex ownership: resource id -> thread id.
    owners: HashMap<usize, usize>,
    schedule: Vec<Choice>,
    replay: Vec<Choice>,
    /// `Some(rng_state)` switches choice-making from DFS to seeded random.
    random: Option<u64>,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
}

impl Default for Th {
    fn default() -> Self {
        Th {
            status: Status::Runnable,
            yielded: false,
        }
    }
}

pub(crate) struct Scheduler {
    state: Mutex<Exec>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

static SCHED: OnceLock<Scheduler> = OnceLock::new();
static NEXT_RID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Model-thread id of the calling thread, or `None` outside a model.
pub(crate) fn tid() -> Option<usize> {
    TID.with(|t| t.get())
}

pub(crate) fn set_tid(id: Option<usize>) {
    TID.with(|t| t.set(id));
}

pub(crate) fn global() -> &'static Scheduler {
    SCHED.get_or_init(|| Scheduler {
        state: Mutex::new(Exec::default()),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    })
}

/// Fresh process-wide resource id (mutexes and condvars).
pub(crate) fn next_rid() -> usize {
    NEXT_RID.fetch_add(1, Ordering::Relaxed)
}

/// Unwind the calling model thread because the execution has failed.
/// Must never be reached from destructor context: callers check
/// [`std::thread::panicking`] first and bail out instead, otherwise a
/// guard dropped during an `Abort` unwind would panic-in-panic.
fn abort_thread() -> ! {
    panic_any(Abort)
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Choose the next thread to run. Must be called with the state lock held;
/// leaves `current` pointing at the chosen thread (or `NO_THREAD` when the
/// execution is over or has failed).
fn pick_next(st: &mut Exec) {
    if st.failure.is_some() {
        st.current = NO_THREAD;
        return;
    }
    let runnable: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.current = NO_THREAD; // execution complete
        } else {
            let snapshot: Vec<(usize, Status)> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.status))
                .collect();
            st.failure = Some(format!(
                "deadlock: every live thread is blocked: {snapshot:?}"
            ));
            st.current = NO_THREAD;
        }
        return;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        st.failure = Some(format!(
            "livelock: execution exceeded {} scheduling points",
            st.max_steps
        ));
        st.current = NO_THREAD;
        return;
    }
    // Fairness: prefer threads that have not yielded since the last round.
    let mut cands: Vec<usize> = runnable
        .iter()
        .copied()
        .filter(|&t| !st.threads[t].yielded)
        .collect();
    if cands.is_empty() {
        for &t in &runnable {
            st.threads[t].yielded = false;
        }
        cands = runnable;
    }
    let n = cands.len();
    let rank = if n == 1 {
        0
    } else if st.schedule.len() < st.replay.len() {
        let c = st.replay[st.schedule.len()];
        if c.alts != n {
            st.failure = Some(format!(
                "nondeterministic execution: replay expected {} alternatives at \
                 decision {}, found {n} (model closures must be deterministic \
                 apart from scheduling)",
                c.alts,
                st.schedule.len()
            ));
            st.current = NO_THREAD;
            return;
        }
        c.rank.min(n - 1)
    } else if let Some(s) = &mut st.random {
        (xorshift(s) % n as u64) as usize
    } else {
        0
    };
    if n > 1 {
        st.schedule.push(Choice { rank, alts: n });
    }
    st.current = cands[rank];
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, Exec> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park until this thread is scheduled; aborts the thread on failure
    /// (or returns immediately when already unwinding — see
    /// [`abort_thread`]).
    fn wait_turn<'a>(&'a self, mut st: MutexGuard<'a, Exec>, me: usize) -> MutexGuard<'a, Exec> {
        loop {
            if st.failure.is_some() {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                abort_thread();
            }
            if st.current == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain scheduling point: offer the scheduler a chance to run any
    /// other eligible thread, then continue when chosen again.
    pub(crate) fn yield_branch(&self, me: usize) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            if std::thread::panicking() {
                return;
            }
            abort_thread();
        }
        pick_next(&mut st);
        self.cv.notify_all();
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// `yield_now`: like [`Self::yield_branch`] but deprioritises the
    /// caller until every other runnable thread has had a turn.
    pub(crate) fn thread_yield(&self, me: usize) {
        {
            let mut st = self.lock();
            st.threads[me].yielded = true;
        }
        self.yield_branch(me);
    }

    /// Acquire loop without the leading scheduling point (used after a
    /// condvar wake, where the thread was just scheduled).
    fn mutex_acquire_loop(&self, rid: usize, me: usize) {
        let mut st = self.lock();
        loop {
            if st.failure.is_some() {
                drop(st);
                abort_thread();
            }
            if let std::collections::hash_map::Entry::Vacant(e) = st.owners.entry(rid) {
                e.insert(me);
                return;
            }
            st.threads[me].status = Status::Blocked(BlockedOn::Mutex(rid));
            pick_next(&mut st);
            self.cv.notify_all();
            st = self.wait_turn(st, me);
        }
    }

    pub(crate) fn mutex_lock(&self, rid: usize, me: usize) {
        // Pre-acquire scheduling point: others may interleave between the
        // caller arriving at the lock and actually taking it.
        self.yield_branch(me);
        self.mutex_acquire_loop(rid, me);
    }

    pub(crate) fn mutex_try_lock(&self, rid: usize, me: usize) -> bool {
        self.yield_branch(me);
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            abort_thread();
        }
        if let std::collections::hash_map::Entry::Vacant(e) = st.owners.entry(rid) {
            e.insert(me);
            true
        } else {
            // Deprioritise so bounded exploration is not swamped by
            // try-lock retry spam (`Steal::Retry` loops).
            st.threads[me].yielded = true;
            false
        }
    }

    pub(crate) fn mutex_release(&self, rid: usize, me: usize) {
        {
            let mut st = self.lock();
            st.owners.remove(&rid);
            for t in st.threads.iter_mut() {
                if t.status == Status::Blocked(BlockedOn::Mutex(rid)) {
                    t.status = Status::Runnable;
                }
            }
        }
        // Post-release scheduling point: a woken waiter may grab the lock
        // before the releaser proceeds.
        self.yield_branch(me);
    }

    /// Atomically release `mutex_rid`, block on condvar `cid`, and on
    /// wake-up reacquire the mutex before returning.
    pub(crate) fn condvar_wait(&self, cid: usize, mutex_rid: usize, me: usize) {
        {
            let mut st = self.lock();
            if st.failure.is_some() {
                drop(st);
                abort_thread();
            }
            st.owners.remove(&mutex_rid);
            for t in st.threads.iter_mut() {
                if t.status == Status::Blocked(BlockedOn::Mutex(mutex_rid)) {
                    t.status = Status::Runnable;
                }
            }
            st.threads[me].status = Status::Blocked(BlockedOn::Condvar(cid));
            pick_next(&mut st);
            self.cv.notify_all();
            let st = self.wait_turn(st, me);
            drop(st);
        }
        self.mutex_acquire_loop(mutex_rid, me);
    }

    pub(crate) fn condvar_notify(&self, cid: usize, me: usize, all: bool) {
        {
            let mut st = self.lock();
            for t in st.threads.iter_mut() {
                if t.status == Status::Blocked(BlockedOn::Condvar(cid)) {
                    t.status = Status::Runnable;
                    if !all {
                        break;
                    }
                }
            }
        }
        self.yield_branch(me);
    }

    /// Register a new model thread; returns its id. The thread starts
    /// runnable but only proceeds once [`Self::wait_first`] is released.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Th::default());
        st.threads.len() - 1
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Park a freshly spawned OS thread until the scheduler picks it.
    pub(crate) fn wait_first(&self, id: usize) {
        let st = self.lock();
        let st = self.wait_turn(st, id);
        drop(st);
    }

    pub(crate) fn join_wait(&self, target: usize, me: usize) {
        let mut st = self.lock();
        loop {
            if st.failure.is_some() {
                drop(st);
                abort_thread();
            }
            if st.threads[target].status == Status::Finished {
                return;
            }
            st.threads[me].status = Status::Blocked(BlockedOn::Join(target));
            pick_next(&mut st);
            self.cv.notify_all();
            st = self.wait_turn(st, me);
        }
    }

    /// Normal completion of a model thread: wake joiners, hand off.
    pub(crate) fn thread_finished(&self, id: usize) {
        let mut st = self.lock();
        st.threads[id].status = Status::Finished;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockedOn::Join(id)) {
                t.status = Status::Runnable;
            }
        }
        pick_next(&mut st);
        self.cv.notify_all();
    }

    /// Completion after an [`Abort`] unwind: the execution has already
    /// failed; just mark the thread dead and wake everyone.
    pub(crate) fn thread_finished_quiet(&self, id: usize) {
        let mut st = self.lock();
        st.threads[id].status = Status::Finished;
        self.cv.notify_all();
    }

    /// A model thread panicked with a real payload (assertion failure in
    /// the closure under test): record it as the execution's failure.
    pub(crate) fn record_panic(&self, id: usize, payload: Box<dyn std::any::Any + Send>) {
        let msg = panic_message(payload.as_ref());
        let mut st = self.lock();
        st.threads[id].status = Status::Finished;
        if st.failure.is_none() {
            st.failure = Some(format!("thread {id} panicked: {msg}"));
        }
        st.current = NO_THREAD;
        self.cv.notify_all();
    }

    /// Run the closure once under a fresh execution. Returns the recorded
    /// schedule; panics (on the caller's thread) if the execution failed.
    pub(crate) fn run_once<F: Fn()>(
        &self,
        f: &F,
        replay: Vec<Choice>,
        random: Option<u64>,
        max_steps: usize,
    ) -> Vec<Choice> {
        {
            let mut st = self.lock();
            *st = Exec {
                active: true,
                threads: vec![Th::default()],
                current: 0,
                owners: HashMap::new(),
                schedule: Vec::new(),
                replay,
                random,
                steps: 0,
                max_steps,
                failure: None,
            };
        }
        set_tid(Some(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        match r {
            Ok(()) => self.thread_finished(0),
            Err(p) => {
                if p.downcast_ref::<Abort>().is_some() {
                    self.thread_finished_quiet(0);
                } else {
                    self.record_panic(0, p);
                }
            }
        }
        // Wait for every spawned thread to finish (or the execution to fail).
        {
            let mut st = self.lock();
            loop {
                if st.failure.is_some() || st.threads.iter().all(|t| t.status == Status::Finished) {
                    break;
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let handles: Vec<_> = {
            let mut h = self.handles.lock().unwrap_or_else(|e| e.into_inner());
            h.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        set_tid(None);
        let (schedule, failure) = {
            let mut st = self.lock();
            st.active = false;
            (std::mem::take(&mut st.schedule), st.failure.take())
        };
        if let Some(msg) = failure {
            panic!("loom model failure: {msg}\n  schedule (rank/alts): {schedule:?}");
        }
        schedule
    }
}
