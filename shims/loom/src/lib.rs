//! Offline shim for [`loom`](https://docs.rs/loom): a deterministic
//! interleaving checker for the repo's lock-based concurrency shims.
//!
//! # What it is
//!
//! [`model`] (or [`Builder::check`]) runs a closure many times under a
//! cooperative scheduler that permits exactly one thread to run at a
//! time. Every operation on the instrumented primitives
//! ([`sync::Mutex`], [`sync::Condvar`], [`sync::atomic`],
//! [`thread::spawn`]/[`thread::JoinHandle::join`]) is a *scheduling
//! point* where the scheduler may switch threads. An execution is thus
//! fully described by the sequence of choices taken at points where more
//! than one thread was eligible, and the driver explores that choice
//! tree depth-first (exhaustively when small, bounded otherwise),
//! followed by an optional seeded-random sampling phase.
//!
//! Invariant violations surface as ordinary `assert!` panics inside the
//! closure; the driver reports the failing schedule so the interleaving
//! is reproducible. Deadlocks (every live thread blocked) and livelocks
//! (an execution exceeding the step bound) are detected and reported
//! the same way.
//!
//! # What it is not
//!
//! This is sequential-consistency model checking over *lock and atomic
//! interleavings*. Unlike real loom it does not model weak memory
//! orderings, and exploration beyond the DFS budget is sampled, not
//! exhaustive. See DESIGN.md §"Static analysis & model checking".
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod sched;
pub mod stdsync;
pub mod sync;
pub mod thread;

pub use sched::Choice;

use std::sync::{Mutex, Once, OnceLock};

/// Serialises model runs: the scheduler is process-global state, and
/// `cargo test` runs tests on concurrent threads.
static MODEL_SERIAL: OnceLock<Mutex<()>> = OnceLock::new();

/// Suppress panic-hook noise from the internal `Abort` unwinds used to
/// tear down model threads after a failure has already been recorded.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<sched::Abort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Outcome of a [`Builder::check`] run that found no violation.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of executions (schedules) explored.
    pub schedules: usize,
    /// `true` when the DFS visited the entire schedule tree (the result
    /// is a proof over the modelled interleavings, not a sample).
    pub exhaustive: bool,
}

/// Configures schedule exploration. Defaults are overridable via the
/// `ETSQP_MODEL_SCHEDULES`, `ETSQP_MODEL_RANDOM`, `ETSQP_MODEL_SEED`
/// and `ETSQP_MODEL_MAX_STEPS` environment variables.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// DFS budget: maximum number of systematically explored schedules.
    pub max_schedules: usize,
    /// Extra seeded-random schedules run when DFS did not exhaust.
    pub random_schedules: usize,
    /// Seed for the random phase (fixed default keeps CI deterministic).
    pub seed: u64,
    /// Per-execution scheduling-point bound (livelock backstop).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Builder with environment-derived defaults.
    pub fn new() -> Self {
        Builder {
            max_schedules: env_usize("ETSQP_MODEL_SCHEDULES", 4000),
            random_schedules: env_usize("ETSQP_MODEL_RANDOM", 400),
            seed: env_u64("ETSQP_MODEL_SEED", 0x5EED_CAFE),
            max_steps: env_usize("ETSQP_MODEL_MAX_STEPS", 100_000),
        }
    }

    /// Explores schedules of `f`. Panics with the failing schedule on the
    /// first invariant violation, deadlock, or livelock; otherwise
    /// returns how much of the schedule space was covered.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let _serial = MODEL_SERIAL
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        install_quiet_hook();
        let sch = sched::global();
        let mut replay: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        let mut exhaustive = false;
        loop {
            executions += 1;
            let schedule = sch.run_once(&f, std::mem::take(&mut replay), None, self.max_steps);
            match next_replay(&schedule) {
                Some(next) => replay = next,
                None => {
                    exhaustive = true;
                    break;
                }
            }
            if executions >= self.max_schedules {
                break;
            }
        }
        if !exhaustive {
            for i in 0..self.random_schedules {
                executions += 1;
                let rng = self
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1;
                sch.run_once(&f, Vec::new(), Some(rng), self.max_steps);
            }
        }
        Report {
            schedules: executions,
            exhaustive,
        }
    }
}

/// DFS backtracking: advance the deepest decision that still has an
/// unexplored alternative; `None` when the whole tree has been visited.
fn next_replay(schedule: &[Choice]) -> Option<Vec<Choice>> {
    for i in (0..schedule.len()).rev() {
        let c = schedule[i];
        if c.rank + 1 < c.alts {
            let mut next: Vec<Choice> = schedule[..i].to_vec();
            next.push(Choice {
                rank: c.rank + 1,
                alts: c.alts,
            });
            return Some(next);
        }
    }
    None
}

/// Explores schedules of `f` with default bounds (loom-compatible entry
/// point). Panics on the first invariant violation.
pub fn model<F: Fn()>(f: F) {
    let report = Builder::new().check(f);
    eprintln!(
        "loom model: {} schedules explored{}",
        report.schedules,
        if report.exhaustive {
            " (exhaustive)"
        } else {
            " (bounded)"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_model_is_one_schedule() {
        let report = Builder::new().check(|| {
            let m = sync::Mutex::new(0);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 1);
        });
        assert_eq!(report.schedules, 1);
        assert!(report.exhaustive);
    }

    #[test]
    fn two_increments_are_exhaustively_explored() {
        let counter = AtomicUsize::new(0);
        let report = Builder::new().check(|| {
            counter.fetch_add(1, Ordering::Relaxed);
            let m = sync::Arc::new(sync::Mutex::new(0));
            let m2 = sync::Arc::clone(&m);
            let h = thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            h.join();
            assert_eq!(*m.lock(), 2);
        });
        // More than one interleaving of the two lock sections exists.
        assert!(report.schedules > 1, "got {report:?}");
        assert!(report.exhaustive);
        assert_eq!(counter.load(Ordering::Relaxed), report.schedules);
    }

    #[test]
    fn finds_lost_update_race() {
        // Classic read-modify-write race on an atomic used non-atomically:
        // both threads load, then both store load+1. The checker must find
        // the interleaving where one update is lost.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Builder::new().check(|| {
                let v = sync::Arc::new(sync::atomic::AtomicU64::new(0));
                let v2 = sync::Arc::clone(&v);
                let h = thread::spawn(move || {
                    let x = v2.load(sync::atomic::Ordering::SeqCst);
                    v2.store(x + 1, sync::atomic::Ordering::SeqCst);
                });
                let x = v.load(sync::atomic::Ordering::SeqCst);
                v.store(x + 1, sync::atomic::Ordering::SeqCst);
                h.join();
                assert_eq!(v.load(sync::atomic::Ordering::SeqCst), 2);
            });
        }));
        let msg = match result {
            Err(p) => crate::tests::payload_str(p.as_ref()),
            Ok(_) => panic!("model missed the lost-update race"),
        };
        assert!(msg.contains("loom model failure"), "unexpected: {msg}");
    }

    #[test]
    fn detects_abba_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Builder::new().check(|| {
                let a = sync::Arc::new(sync::Mutex::new(()));
                let b = sync::Arc::new(sync::Mutex::new(()));
                let (a2, b2) = (sync::Arc::clone(&a), sync::Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
                let _ga = a.lock();
                let _gb = b.lock();
                drop((_ga, _gb));
                h.join();
            });
        }));
        let msg = match result {
            Err(p) => crate::tests::payload_str(p.as_ref()),
            Ok(_) => panic!("model missed the AB-BA deadlock"),
        };
        assert!(msg.contains("deadlock"), "unexpected: {msg}");
    }

    #[test]
    fn condvar_handoff_is_not_lost() {
        // Producer/consumer with the notify-under-lock discipline: no
        // schedule may lose the wakeup or deadlock.
        let report = Builder::new().check(|| {
            let pair = sync::Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let pair2 = sync::Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            drop(ready);
            h.join();
        });
        assert!(report.exhaustive, "got {report:?}");
    }

    pub(crate) fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            String::new()
        }
    }
}
