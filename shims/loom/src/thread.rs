//! Model-controlled threads.
//!
//! [`spawn`] creates a real OS thread, but the scheduler parks it until
//! chosen; at most one model thread ever runs at a time, so the spawned
//! closure executes deterministically under the explored schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::sched::{self, Abort};

/// Handle to a model thread; [`JoinHandle::join`] is a scheduling point.
pub struct JoinHandle<T> {
    id: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes and returns its
    /// value. If the thread panicked, the execution has already been
    /// recorded as failed and this call unwinds the caller.
    pub fn join(self) -> T {
        let me = sched::tid().expect("loom::thread::JoinHandle::join outside a model");
        sched::global().join_wait(self.id, me);
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("finished model thread left a result")
    }
}

/// Spawns a model thread. Unlike `std::thread::spawn` this may only be
/// called from inside [`crate::model`] / [`crate::Builder::check`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let me = sched::tid().expect("loom::thread::spawn outside a model");
    let sch = sched::global();
    let id = sch.register_thread();
    let slot = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let os = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            sched::set_tid(Some(id));
            let r = catch_unwind(AssertUnwindSafe(|| {
                sched::global().wait_first(id);
                f()
            }));
            match r {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    sched::global().thread_finished(id);
                }
                Err(p) => {
                    if p.downcast_ref::<Abort>().is_some() {
                        sched::global().thread_finished_quiet(id);
                    } else {
                        sched::global().record_panic(id, p);
                    }
                }
            }
        })
        .expect("spawn OS thread for model");
    sch.push_handle(os);
    // Spawning is itself a scheduling point: the child may run first.
    sch.yield_branch(me);
    JoinHandle { id, slot }
}

/// Cooperative yield: deprioritises the caller for one scheduler round.
/// Use this in `Steal::Retry`-style loops so bounded exploration is not
/// swamped by spin schedules.
pub fn yield_now() {
    if let Some(me) = sched::tid() {
        sched::global().thread_yield(me);
    } else {
        std::thread::yield_now();
    }
}
