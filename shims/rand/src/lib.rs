//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen_range, gen_ratio, gen_bool, gen}`]. Deterministic per
//! seed (splitmix64 seeding + xoshiro256** core), but the streams are
//! NOT identical to upstream rand's. See `shims/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for any [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` half-open or `a..=b` inclusive
    /// over the integer types and `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample of a full-width primitive.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from. The single generic
/// impl per range shape (mirroring upstream rand) keeps type inference
/// working for unsuffixed literals like `gen_range(0..32)`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable over a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Modulo draw; bias is negligible for the small bounds the
                // dataset generators use.
                let span = (hi as i128 - lo as i128) as u64;
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                (rng.next_u64() % span).wrapping_add(lo as u64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator seeded via splitmix64 — deterministic,
    /// fast, and good enough for synthetic data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(10..200);
            assert!((10..200).contains(&u));
            let f: f64 = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
        // Bounds are reachable.
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(0i64..=3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn gen_ratio_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.gen_ratio(1, 50)).count();
        // Expected 1000; allow a generous band.
        assert!((600..1500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn negative_inclusive_range_covers_sign_change() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }
}
