//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`], a cheaply cloneable, sliceable, immutable byte buffer
//! backed by `Arc<[u8]>`. See `shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer. Clones and sub-slices share the backing
/// allocation, so pages handed to pipeline jobs on different threads
/// never copy their payloads.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Empty buffer (no allocation shared yet).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer owning a copy of `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            off: 0,
            len: slice.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sub-buffer sharing the backing allocation.
    ///
    /// # Panics
    /// If the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Bytes {
            data: Arc::from(b),
            off: 0,
            len,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len > 32 {
            write!(f, "…(+{})", self.len - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_data() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s2.to_vec(), vec![3, 4]);
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![9u8, 8, 7]);
        let b = Bytes::copy_from_slice(&[0, 9, 8, 7]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
