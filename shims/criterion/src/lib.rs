//! Offline shim for the subset of `criterion` this workspace's benches
//! use: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! benchmark groups with throughput annotation, and [`Bencher::iter`].
//! Reports mean wall-clock time per iteration (plus derived element
//! throughput) to stdout; no statistics, plots or comparisons.
//! See `shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (best-effort).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        // Warm-up: run once to pull code/data into caches, then calibrate
        // an iteration count that roughly fills the measurement window.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            f(&mut b);
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let per_sample = budget.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let mean = b.elapsed / iters as u32;
            best = best.min(mean);
            total += mean;
        }
        let mean = total / self.sample_size as u32;
        let full_id = format!("{}/{}", self.name, id);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>12.3} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{full_id:<56} time: [{best:>12.3?} .. {mean:>12.3?}]{rate}");
        self.criterion.completed += 1;
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("bench", &mut f);
        group.finish();
        self
    }

    /// Entry point used by [`criterion_main!`]'s generated `main`.
    pub fn final_summary(&self) {
        println!("== {} benchmark(s) complete", self.completed);
    }
}

/// Declares a group function running each benchmark function with a
/// shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(4));
        group.warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
