//! Offline shim for the subset of `parking_lot` this workspace uses:
//! poison-free [`Mutex`], [`RwLock`] and [`Condvar`] wrappers over their
//! `std::sync` counterparts. See `shims/README.md`.
//!
//! With the `lockdep` feature, locks built via `with_class` additionally
//! record their acquisition order into a process-wide graph and panic on
//! inversions (see the [`lockdep`] module docs).

#![forbid(unsafe_code)]

#[cfg(feature = "lockdep")]
pub mod lockdep;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion primitive; `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    class: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it out while blocked.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "lockdep"), allow(dead_code))]
    class: Option<&'static str>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            class: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex assigned to lockdep class `class`: under the
    /// `lockdep` feature its acquisitions participate in lock-order
    /// tracking; without it the class is inert.
    pub const fn with_class(value: T, class: &'static str) -> Self {
        Mutex {
            class: Some(class),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// holders are ignored (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        lockdep::acquire(self.class);
        MutexGuard {
            class: self.class,
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        lockdep::release(self.class);
    }
}

/// Condition variable usable with [`MutexGuard`]; `wait` takes the guard
/// by `&mut` (parking_lot's signature) instead of by value.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard already taken");
        // The lock is released for the duration of the wait: mirror that
        // in the lockdep held-set so blocked waiters don't pin an order.
        #[cfg(feature = "lockdep")]
        lockdep::release(guard.class);
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockdep")]
        lockdep::acquire(guard.class);
        guard.guard = Some(inner);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`, reacquiring
    /// the lock either way. The result reports whether the wait timed
    /// out (parking_lot's `wait_for` signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard already taken");
        #[cfg(feature = "lockdep")]
        lockdep::release(guard.class);
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockdep")]
        lockdep::acquire(guard.class);
        guard.guard = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter; returns whether a thread was woken
    /// (always `false` here: std does not report it).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all blocked waiters; returns the number woken (always 0
    /// here: std does not report it).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// (as opposed to a notification).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized> {
    class: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "lockdep"), allow(dead_code))]
    class: Option<&'static str>,
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "lockdep"), allow(dead_code))]
    class: Option<&'static str>,
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            class: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock assigned to lockdep class `class`; read and write
    /// acquisitions share the class (see [`Mutex::with_class`]).
    pub const fn with_class(value: T, class: &'static str) -> Self {
        RwLock {
            class: Some(class),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        lockdep::acquire(self.class);
        RwLockReadGuard {
            class: self.class,
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        lockdep::acquire(self.class);
        RwLockWriteGuard {
            class: self.class,
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        lockdep::release(self.class);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        lockdep::release(self.class);
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_signal() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn wait_for_times_out_and_reports_it() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
        drop(g);
        let _reusable = m.lock(); // lock was reacquired and is usable
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1); // lock still usable
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
