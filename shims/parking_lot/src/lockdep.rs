//! `etsqp-verify` layer 2: runtime lock-order tracking (lockdep).
//!
//! Compiled only under the `lockdep` feature. Every [`crate::Mutex`] or
//! [`crate::RwLock`] built with `with_class` participates: acquisitions
//! record `held-class → acquired-class` edges into a process-wide order
//! graph, and an acquisition that would close a cycle — i.e. an
//! inversion of an order the graph already established — panics
//! immediately with the offending path, instead of deadlocking some
//! future run under an unlucky schedule.
//!
//! The graph is seeded by [`declare_order`] for orders that hold by
//! construction rather than by observed nesting (e.g. the storage
//! crate's `shard → series` rule, where the shard guard is always
//! dropped *before* the series mutex is taken, so no nested acquisition
//! would ever record the edge on its own). Classes are compared by
//! name, read and write acquisitions of one lock share its class, and
//! unclassified locks are invisible to the tracker.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Directed order graph: an `a → b` edge means "a was (or must be)
/// acquired before b".
type Graph = BTreeMap<&'static str, BTreeSet<&'static str>>;

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::new()))
}

thread_local! {
    /// Classes of the locks this thread currently holds, in acquisition
    /// order (guards may drop out of order; release removes by class).
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Seeds the order graph with `earlier → later` — the declared rule that
/// `earlier`-class locks are acquired before `later`-class locks.
pub fn declare_order(earlier: &'static str, later: &'static str) {
    if earlier == later {
        return;
    }
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    g.entry(earlier).or_default().insert(later);
}

/// BFS path `from ⇝ to` through the order graph, for the panic message.
fn path(g: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
    let mut prev: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue: VecDeque<&'static str> = VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut out = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                out.push(p);
                cur = p;
            }
            out.reverse();
            return Some(out);
        }
        for &next in g.get(n).into_iter().flatten() {
            if next != from && !prev.contains_key(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Records an acquisition of `class`, panicking if it inverts the
/// established order. Called by the lock wrappers *before* blocking, so
/// the inversion is reported even when the schedule would deadlock.
pub(crate) fn acquire(class: Option<&'static str>) {
    let Some(later) = class else { return };
    let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
    if !held.is_empty() {
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        for &earlier in &held {
            // Same-class nesting (e.g. two different shards) carries no
            // cross-class order information; skip it.
            if earlier == later {
                continue;
            }
            if let Some(p) = path(&g, later, earlier) {
                drop(g);
                panic!(
                    "lockdep: acquiring '{later}' while holding '{earlier}' inverts the \
                     established lock order {} -> {earlier}",
                    p.join(" -> ")
                );
            }
            g.entry(earlier).or_default().insert(later);
        }
    }
    HELD.with(|h| h.borrow_mut().push(later));
}

/// Removes one held entry for `class` (the most recent, since RAII
/// guards of the same class unwind innermost-first in the common case).
pub(crate) fn release(class: Option<&'static str>) {
    let Some(c) = class else { return };
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&x| x == c) {
            held.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_finds_transitive_orders() {
        let mut g = Graph::new();
        g.entry("a").or_default().insert("b");
        g.entry("b").or_default().insert("c");
        assert_eq!(path(&g, "a", "c"), Some(vec!["a", "b", "c"]));
        assert_eq!(path(&g, "c", "a"), None);
    }
}
