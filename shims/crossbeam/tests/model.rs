//! Model-checked interleavings of the lock-based deques and of the
//! pool's latch/shutdown protocol (a miniature replica of
//! `crates/core/src/pool.rs`; the pool crate sits above this shim, so
//! the protocol is replicated here rather than imported).
//!
//! Run with: `cargo test -p crossbeam --features model`
//!
//! Every test drives the deque through `loom`'s cooperative scheduler,
//! exploring thread interleavings depth-first (exhaustively when the
//! space is small, bounded + seeded-random otherwise). An invariant
//! violation panics with the failing schedule.
#![cfg(feature = "model")]

use crossbeam::deque::{Injector, Steal, Worker};
use loom::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// Steal from `inj` until `Empty`, yielding on `Retry` (the fairness
/// contract every real caller follows — see pool.rs's steal loops).
fn drain_steal(inj: &Injector<usize>, mut claim: impl FnMut(usize)) {
    loop {
        match inj.steal() {
            Steal::Success(v) => claim(v),
            Steal::Empty => break,
            Steal::Retry => loom::thread::yield_now(),
        }
    }
}

#[test]
fn model_worker_steal_vs_pop_claims_each_task_once() {
    let report = loom::Builder::new().check(|| {
        let w = Worker::new_fifo();
        for i in 0..3 {
            w.push(i);
        }
        let s = w.stealer();
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match s.steal() {
                    Steal::Success(v) => got.push(v),
                    Steal::Empty => break,
                    Steal::Retry => loom::thread::yield_now(),
                }
            }
            got
        });
        let mut mine = Vec::new();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let stolen = thief.join();
        // Conservation: every task claimed exactly once, by someone.
        let mut all = mine;
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "task lost or claimed twice");
    });
    assert!(report.schedules > 10, "explored too little: {report:?}");
}

#[test]
fn model_push_steal_pop_triangle() {
    // The deque triangle from the pool: the owner keeps pushing and
    // popping while a thief steals — no interleaving may lose or
    // duplicate a task between the three operations.
    let report = loom::Builder::new().check(|| {
        let w = Worker::new_lifo();
        let s = w.stealer();
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..4 {
                match s.steal() {
                    Steal::Success(v) => got.push(v),
                    Steal::Empty | Steal::Retry => loom::thread::yield_now(),
                }
            }
            got
        });
        let mut mine = Vec::new();
        w.push(1);
        w.push(2);
        if let Some(v) = w.pop() {
            mine.push(v);
        }
        w.push(3);
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let stolen = thief.join();
        let mut all = mine;
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "task lost or claimed twice");
    });
    assert!(report.schedules > 10, "explored too little: {report:?}");
}

#[test]
fn model_injector_fifo_drain() {
    // Two consumers drain a pre-loaded injector through batch steals.
    // FIFO contract: each consumer's claim sequence is increasing, and
    // the union covers every task exactly once.
    let report = loom::Builder::new().check(|| {
        let inj = Arc::new(Injector::new());
        for i in 0..4 {
            inj.push(i);
        }
        let inj2 = Arc::clone(&inj);
        let consumer = |inj: Arc<Injector<usize>>| {
            let local = Worker::new_fifo();
            let mut got = Vec::new();
            loop {
                let task = match local.pop() {
                    Some(v) => Some(v),
                    None => loop {
                        match inj.steal_batch_and_pop(&local) {
                            Steal::Success(v) => break Some(v),
                            Steal::Empty => break None,
                            Steal::Retry => loom::thread::yield_now(),
                        }
                    },
                };
                match task {
                    Some(v) => got.push(v),
                    None => break,
                }
            }
            got
        };
        let other = loom::thread::spawn(move || consumer(inj2));
        let mine = consumer(inj);
        let theirs = other.join();
        for seq in [&mine, &theirs] {
            assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "FIFO order violated within a consumer: {seq:?}"
            );
        }
        let mut all = mine;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "task lost or claimed twice");
    });
    assert!(report.schedules > 10, "explored too little: {report:?}");
}

/// Replica of pool.rs's `Latch`: counts outstanding jobs and live
/// runner tasks; `wait_open` returns only when both reach zero. The
/// real latch also has a timeout so the caller can help; the model
/// drops the timeout on purpose — it proves the notify discipline
/// alone is deadlock-free (the timeout is an optimisation, not a
/// liveness crutch).
struct Latch {
    jobs_left: AtomicUsize,
    tasks_live: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(jobs: usize, tasks: usize) -> Latch {
        Latch {
            jobs_left: AtomicUsize::new(jobs),
            tasks_live: AtomicUsize::new(tasks),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn is_open(&self) -> bool {
        self.jobs_left.load(Ordering::SeqCst) == 0 && self.tasks_live.load(Ordering::SeqCst) == 0
    }

    fn job_done(&self) {
        if self.jobs_left.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Notify under the lock: pairs with the load in wait_open so
            // the transition to zero cannot slip between its check and
            // its wait (the lost-wakeup race the model would catch).
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn task_exit(&self) {
        if self.tasks_live.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn wait_open(&self) {
        let mut g = self.lock.lock();
        while !self.is_open() {
            self.cv.wait(&mut g);
        }
    }
}

struct Batch {
    queue: Injector<usize>,
    results: Vec<AtomicI64>,
    claims: Vec<AtomicUsize>,
    latch: Latch,
}

impl Batch {
    fn new(jobs: usize, tasks: usize) -> Batch {
        let queue = Injector::new();
        for i in 0..jobs {
            queue.push(i);
        }
        Batch {
            queue,
            results: (0..jobs).map(|_| AtomicI64::new(0)).collect(),
            claims: (0..jobs).map(|_| AtomicUsize::new(0)).collect(),
            latch: Latch::new(jobs, tasks),
        }
    }

    /// What pool.rs's `run_runner` does per morsel: claim, execute,
    /// publish the result, count the job done. `poison` marks a job
    /// whose closure panics; like `run_one`, the panic is caught and
    /// published as an error value (-1), never leaked into the latch.
    fn run_runner(&self, poison: Option<usize>) {
        drain_steal(&self.queue, |i| {
            self.claims[i].fetch_add(1, Ordering::SeqCst);
            let result = if poison == Some(i) {
                -1 // catch_unwind'ed panic -> Err published to the slot
            } else {
                i as i64 + 1
            };
            self.results[i].store(result, Ordering::SeqCst);
            self.latch.job_done();
        });
    }
}

#[test]
fn model_pool_shutdown_with_query_in_flight() {
    // One worker task plus the caller (who helps, as in pool.rs) drain
    // a 3-morsel batch. Invariants across every interleaving:
    //   * each morsel is claimed exactly once;
    //   * the caller's wait_open returns only after the worker task has
    //     fully exited (the use-after-free guard: the batch's memory is
    //     released when wait_open returns);
    //   * every result slot is written before the caller reads it.
    let report = loom::Builder::new().check(|| {
        let batch = Arc::new(Batch::new(3, 1));
        let exited = Arc::new(AtomicUsize::new(0));
        let (b2, e2) = (Arc::clone(&batch), Arc::clone(&exited));
        loom::thread::spawn(move || {
            b2.run_runner(None);
            e2.store(1, Ordering::SeqCst);
            b2.latch.task_exit();
        });
        batch.run_runner(None); // caller helps while waiting
        batch.latch.wait_open();
        assert_eq!(
            exited.load(Ordering::SeqCst),
            1,
            "caller proceeded to teardown while the runner task was alive"
        );
        for (i, (claims, result)) in batch.claims.iter().zip(&batch.results).enumerate() {
            assert_eq!(claims.load(Ordering::SeqCst), 1, "morsel {i} claim count");
            assert_eq!(
                result.load(Ordering::SeqCst),
                i as i64 + 1,
                "morsel {i} result missing or wrong"
            );
        }
    });
    assert!(report.schedules > 10, "explored too little: {report:?}");
}

#[test]
fn model_pool_panic_recovery_still_opens_latch() {
    // A panicking job must not wedge the batch: the panic is caught at
    // the job boundary (pool.rs `run_one`), an error result is
    // published, and the latch still opens — in every interleaving.
    let report = loom::Builder::new().check(|| {
        let batch = Arc::new(Batch::new(2, 1));
        let b2 = Arc::clone(&batch);
        loom::thread::spawn(move || {
            b2.run_runner(Some(1)); // job 1 "panics" inside its closure
            b2.latch.task_exit();
        });
        batch.run_runner(Some(1));
        batch.latch.wait_open(); // deadlock here = failed recovery
        assert_eq!(batch.claims[1].load(Ordering::SeqCst), 1);
        assert_eq!(
            batch.results[1].load(Ordering::SeqCst),
            -1,
            "panicked job must publish an error result"
        );
        assert_eq!(batch.results[0].load(Ordering::SeqCst), 1);
    });
    assert!(report.schedules > 10, "explored too little: {report:?}");
}
