//! Work-stealing deques mirroring `crossbeam-deque`'s API surface:
//! [`Worker`] (owner end), [`Stealer`] (thief end) and [`Injector`] (a
//! shared FIFO task pool), with the three-valued [`Steal`] result.
//!
//! Like every shim in this workspace, the implementation favours small,
//! auditable code over lock-freedom: each deque is a `Mutex<VecDeque>`.
//! The *semantics* match upstream where the scheduler relies on them:
//!
//! * the owner pops its own end without contention checks;
//! * thieves steal from the front (FIFO order for `new_fifo` workers and
//!   the injector), and report [`Steal::Retry`] instead of blocking when
//!   they lose a race for the lock — callers must loop on `Retry`;
//! * `steal_batch_and_pop` migrates up to half of the source (capped) to
//!   the destination worker and returns one task immediately.

use std::collections::VecDeque;

// Under `--features model` the deque runs on loom-instrumented locks so
// the interleaving checker can explore push/steal/pop schedules; the
// std-shaped wrappers keep every call site below identical. Outside a
// model run the instrumented types degrade to plain std locking, so the
// regular unit tests behave the same under either feature set.
#[cfg(feature = "model")]
use loom::stdsync::{Arc, Mutex};
#[cfg(not(feature = "model"))]
use std::sync::{Arc, Mutex};

/// Largest number of tasks a single `steal_batch_and_pop` migrates
/// (matches upstream's `MAX_BATCH` spirit: bound latency of one steal).
const MAX_BATCH: usize = 32;

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The thief lost a race (lock contention); try again.
    Retry,
}

impl<T> Steal<T> {
    /// `true` when the source was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// `true` on a successful steal.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// `true` when the attempt must be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// Owner pops the front (same end thieves steal from).
    Fifo,
    /// Owner pops the back; thieves still steal the front.
    Lifo,
}

/// The owner end of a work-stealing deque. Create one per worker thread;
/// hand out [`Stealer`]s to the other workers.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// Creates a FIFO deque (owner pops oldest first — fair for morsels).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Fifo,
        }
    }

    /// Creates a LIFO deque (owner pops newest first — cache-friendly
    /// for recursive task spawning).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Lifo,
        }
    }

    /// A thief handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Pops a task from the owner's end (never `Retry`: the owner is
    /// willing to wait out thieves).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock().unwrap();
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// `true` when the deque currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// The thief end of a [`Worker`] deque. Cloneable and shareable.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal one task from the front of the deque.
    pub fn steal(&self) -> Steal<T> {
        let Ok(mut q) = self.queue.try_lock() else {
            return Steal::Retry;
        };
        match q.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// `true` when the deque was observed empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.try_lock().map(|q| q.is_empty()).unwrap_or(false)
    }
}

/// A shared FIFO task pool all workers inject into and steal from
/// (upstream `crossbeam_deque::Injector`).
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Attempts to steal the front task.
    pub fn steal(&self) -> Steal<T> {
        let Ok(mut q) = self.queue.try_lock() else {
            return Steal::Retry;
        };
        match q.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks — up to half the queue, capped — moving
    /// them into `dest` and returning the first immediately.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let Ok(mut q) = self.queue.try_lock() else {
            return Steal::Retry;
        };
        let n = q.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = (n.div_ceil(2)).min(MAX_BATCH);
        let first = q.pop_front().expect("non-empty");
        if take > 1 {
            let mut dq = dest.queue.lock().unwrap();
            for _ in 1..take {
                dq.push_back(q.pop_front().expect("non-empty"));
            }
        }
        Steal::Success(first)
    }

    /// `true` when the queue currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_worker_pops_in_push_order() {
        let w = Worker::new_fifo();
        for i in 0..10 {
            w.push(i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lifo_worker_pops_in_reverse_order() {
        let w = Worker::new_lifo();
        for i in 0..10 {
            w.push(i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(got, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn injector_drains_fifo() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let mut got = Vec::new();
        loop {
            match inj.steal() {
                Steal::Success(v) => got.push(v),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(inj.is_empty());
    }

    #[test]
    fn steal_batch_moves_at_most_half_and_pops_front() {
        let inj = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let dest = Worker::new_fifo();
        let first = inj.steal_batch_and_pop(&dest).success().unwrap();
        assert_eq!(first, 0, "front of the FIFO comes back immediately");
        // Half of 8 = 4 stolen total: one returned, three to the deque.
        assert_eq!(dest.len(), 3);
        assert_eq!(inj.len(), 4);
        assert_eq!(dest.pop(), Some(1));
        assert_eq!(dest.pop(), Some(2));
        assert_eq!(dest.pop(), Some(3));
        // Remaining items still drain in order from the injector.
        assert_eq!(inj.steal().success(), Some(4));
    }

    #[test]
    fn stealer_takes_from_front_of_lifo_owner() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Thief gets the oldest, owner the newest: opposite ends.
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn steal_under_contention_conserves_every_task() {
        // One producer keeps a worker deque loaded; four thieves race it.
        // Every pushed task must be claimed exactly once across the owner
        // and the thieves, with Retry handled by looping.
        const N: u64 = 20_000;
        let w = Worker::new_fifo();
        let owner_sum = std::sync::atomic::AtomicU64::new(0);
        let thief_sum = std::sync::atomic::AtomicU64::new(0);
        let claimed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let thief_sum = &thief_sum;
                let claimed = &claimed;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            thief_sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                            claimed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if claimed.load(std::sync::atomic::Ordering::Relaxed) >= N {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for i in 0..N {
                w.push(i + 1);
                // The owner claims some of its own tasks, interleaved.
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        owner_sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        claimed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
            // Drain the tail so thieves observe the terminal count.
            while let Some(v) = w.pop() {
                owner_sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                claimed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        let total = owner_sum.load(std::sync::atomic::Ordering::Relaxed)
            + thief_sum.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(claimed.load(std::sync::atomic::Ordering::Relaxed), N);
        assert_eq!(total, N * (N + 1) / 2, "no task lost or duplicated");
    }

    #[test]
    fn injector_steals_race_without_loss() {
        // Many thieves drain a pre-loaded injector through batch steals.
        const N: usize = 10_000;
        let inj = Injector::new();
        for i in 0..N {
            inj.push(i);
        }
        let seen = Mutex::new(vec![false; N]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inj = &inj;
                let seen = &seen;
                scope.spawn(move || {
                    let local = Worker::new_fifo();
                    loop {
                        let next = match local.pop() {
                            Some(v) => Some(v),
                            None => match inj.steal_batch_and_pop(&local) {
                                Steal::Success(v) => Some(v),
                                Steal::Retry => continue,
                                Steal::Empty => None,
                            },
                        };
                        match next {
                            Some(v) => {
                                let mut seen = seen.lock().unwrap();
                                assert!(!seen[v], "task {v} claimed twice");
                                seen[v] = true;
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        assert!(
            seen.lock().unwrap().iter().all(|&b| b),
            "every task claimed"
        );
    }
}
