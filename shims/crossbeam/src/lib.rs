//! Offline shim for the subset of `crossbeam` this workspace uses:
//! [`scope`] (scoped threads, built on `std::thread::scope`),
//! [`channel`] (MPMC `unbounded`/`bounded` queues built on
//! `Mutex<VecDeque>` + `Condvar`) and [`deque`] (work-stealing
//! `Worker`/`Stealer`/`Injector` primitives mirroring `crossbeam-deque`,
//! used by the persistent query scheduler). See `shims/README.md`.

#![forbid(unsafe_code)]

pub mod deque;

/// Result of [`scope`]: `Err` carries a panic payload if any spawned
/// thread panicked (matching `crossbeam::scope`'s contract).
pub type ScopeResult<T> = std::thread::Result<T>;

/// A scope handle mirroring `crossbeam::thread::Scope`: `spawn` passes the
/// scope itself to the closure so spawned threads can spawn more.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (callers
    /// that don't re-spawn just bind it as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        self.inner.spawn(move || f(&me))
    }
}

/// Creates a scope for spawning borrowing threads. All threads are joined
/// before this returns; returns `Err(payload)` if the closure or any
/// spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Re-export layout parity with `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope};
}

pub mod channel {
    //! Multi-producer multi-consumer channels (`unbounded` / `bounded`).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// gives the message back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty and at
        /// least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(v)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains currently available messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel holding at most `cap` in-flight messages (`send` blocks
    /// when full). `cap == 0` behaves as capacity 1 (no rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![1, 2, 3];
        let r = scope(|s| {
            s.spawn(|_| 41);
            data.push(4);
            7
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_reports_worker_panic() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn mpmc_channel_delivers_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let n = 1000;
        let got = scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(got, n * (n - 1) / 2);
    }

    #[test]
    fn bounded_channel_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<i64>(1);
        scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        })
        .unwrap();
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
