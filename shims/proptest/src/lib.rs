//! Offline shim for the subset of `proptest` this workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map`, range / tuple / array / string-pattern strategies,
//! [`arbitrary::any`], and [`collection::vec`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! seed (override with `PROPTEST_SEED`; case count with `PROPTEST_CASES`
//! or `ProptestConfig::with_cases`) and failures are **not shrunk** — the
//! failing case's inputs and seed are printed instead so the case is
//! reproducible. See `shims/README.md`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG and failure plumbing used by the generated tests.

    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Base seed for a test run: `PROPTEST_SEED` env var, else a fixed
    /// constant (deterministic CI).
    pub fn seed_from_env_or_default() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xE75C_0DE5_0BAD_CAFE)
    }

    /// Why a generated case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be discarded (kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Rejection with a message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator driving strategies (xoshiro256** seeded
    /// via splitmix64; same construction as the `rand` shim).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Generator for case `case` of a run with base seed `seed`.
        pub fn for_case(seed: u64, case: u32) -> Self {
            Self::seed_from_u64(
                seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }

        /// Generator from a raw 64-bit seed.
        pub fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of [`Strategy::Value`]. Unlike
    /// upstream there is no value tree / shrinking: a strategy simply
    /// draws fresh values from the RNG.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between same-typed strategies ([`crate::prop_oneof!`]).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<(u32, S)>,
        total_weight: u64,
    }

    impl<S: Strategy> Union<S> {
        /// Uniformly weighted union.
        pub fn new(options: Vec<S>) -> Self {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted union.
        pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    rng.below(span).wrapping_add(self.start as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    rng.below(span + 1).wrapping_add(lo as u64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Fixed-size array of draws from one element strategy
    /// (`any::<[T; N]>()` resolves to this).
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy<S, const N: usize>(pub(crate) S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    /// String strategies from a pattern literal. Only the shape used in
    /// this workspace is understood: a char-class-ish prefix with an
    /// optional `{lo,hi}` length suffix (e.g. `"\\PC{0,120}"`, "any
    /// non-control chars, length 0..=120"). The class itself is ignored;
    /// we draw from a printable pool that exercises ASCII, punctuation
    /// and multi-byte unicode.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_suffix(self).unwrap_or((0, 32));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            const POOL: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '(', ')', ',', '.', ';', '*', '+',
                '-', '<', '>', '=', '\'', '"', '%', '_', 'é', 'ß', '中', '🦀', '𝄞',
            ];
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_len_suffix(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let inner = pattern.get(open + 1..close)?;
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    //! `any::<T>()`: canonical strategies per type.

    use crate::strategy::{ArrayStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `T` (upstream `proptest::prelude::any`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-width draws for primitives.
    #[derive(Debug, Clone)]
    pub struct AnyPrimitive<T>(PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(PhantomData)
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(PhantomData)
        }
    }

    // Floats: random bit patterns (covering subnormals, infinities and
    // extreme exponents) with NaN re-rolled so equality-based assertions
    // stay meaningful.
    impl Strategy for AnyPrimitive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            loop {
                let f = f64::from_bits(rng.next_u64());
                if !f.is_nan() {
                    return f;
                }
            }
        }
    }
    impl Arbitrary for f64 {
        type Strategy = AnyPrimitive<f64>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(PhantomData)
        }
    }

    impl Strategy for AnyPrimitive<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            loop {
                let f = f32::from_bits(rng.next_u64() as u32);
                if !f.is_nan() {
                    return f;
                }
            }
        }
    }
    impl Arbitrary for f32 {
        type Strategy = AnyPrimitive<f32>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(PhantomData)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        type Strategy = ArrayStrategy<T::Strategy, N>;
        fn arbitrary() -> Self::Strategy {
            ArrayStrategy(T::arbitrary())
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of draws from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths in `size` (upstream
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated cases. On failure
/// the case number, seed and inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed: u64 = $crate::test_runner::seed_from_env_or_default();
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match __result {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => panic!(
                        "proptest case {}/{} failed (seed {}): {}\n  inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        __seed,
                        __e,
                        __inputs
                    ),
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked (seed {})\n  inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __seed,
                            __inputs
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`: on failure,
/// returns `Err(TestCaseError)` from the enclosing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Uniform (or `weight => strategy` weighted) choice between strategies
/// of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![$(($weight, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (3i64..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1u8..=32).new_value(&mut rng);
            assert!((1..=32).contains(&w));
            let f = (0.0f64..1.0).new_value(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = TestRng::for_case(2, 0);
        let strat = crate::collection::vec((1i64..5, 0u32..9), 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.new_value(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn string_pattern_honours_length_suffix() {
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..200 {
            let s = "\\PC{0,120}".new_value(&mut rng);
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_case(4, 0);
        let strat = prop_oneof![Just(1usize), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.new_value(&mut rng) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(v in crate::collection::vec(any::<i64>(), 0..20)) {
            let doubled: Vec<i64> = v.iter().map(|&x| x.wrapping_mul(2)).collect();
            prop_assert_eq!(v.len(), doubled.len());
            prop_assert!(v.len() < 20, "len bound");
        }
    }
}
