//! `etsqp-cli` — an interactive shell for ETSQP databases.
//!
//! ```sh
//! cargo run --release --bin etsqp-cli -- [--timeout-ms N] [file.etsqp]
//! ```
//!
//! `--timeout-ms N` applies a per-statement deadline: a query running
//! past it aborts at the next morsel boundary with a timeout error
//! instead of holding the shell. A database file that fails validation
//! (truncated, bit-flipped, hostile header) exits with status 3 so
//! scripts can tell corrupt input from usage errors.
//!
//! Commands:
//!
//! * any SQL statement (Table III dialect) — executed and printed;
//! * `EXPLAIN <sql>` — the compiled physical pipeline (per-page-group
//!   strategy, prune verdicts, merge partitions);
//! * `.load <path>` / `.save <path>` — TsFile persistence;
//! * `.gen <spec> <rows>` — ingest a synthetic Table II dataset
//!   (atm | clim | gas | time | sine | tpch);
//! * `.series` — list series with page/point counts;
//! * `.config [threads N] [prune on|off] [fuse none|delta|repeat]
//!   [vectorized on|off]` — inspect / adjust the pipeline;
//! * `.stats` — I/O counters; `.help`; `.quit`.

use std::io::{BufRead, Write};
use std::path::Path;

use std::time::Duration;

use etsqp::core::cancel::CancellationToken;
use etsqp::core::plan::PipelineConfig;
use etsqp::datasets::Spec;
use etsqp::{EngineOptions, FuseLevel, IotDb, Value};

/// Exit status for a database file rejected as corrupt — distinct from
/// the generic failure(1) so scripts can react to hostile input.
const EXIT_CORRUPT: i32 = 3;

fn main() {
    let mut db = IotDb::new(EngineOptions::default());
    let mut cfg = PipelineConfig::default();
    let mut timeout: Option<Duration> = None;
    println!(
        "ETSQP shell — SIMD backend: {} — .help for commands",
        etsqp::simd::backend()
    );

    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => timeout = Some(Duration::from_millis(ms)),
                None => {
                    eprintln!("usage: etsqp-cli [--timeout-ms N] [file.etsqp]");
                    std::process::exit(2);
                }
            },
            _ => file = Some(arg),
        }
    }
    if let Some(path) = file {
        match load(&path) {
            Ok(loaded) => {
                db = loaded;
                println!("loaded {}", path);
            }
            Err(e) => {
                eprintln!("cannot load {path}: {e}");
                if is_corrupt(e.as_ref()) {
                    std::process::exit(EXIT_CORRUPT);
                }
                std::process::exit(1);
            }
        }
    }

    let stdin = std::io::stdin();
    loop {
        print!("etsqp> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".explain ") {
            explain(&db, &cfg, rest);
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            if !dot_command(rest, &mut db, &mut cfg) {
                break;
            }
            continue;
        }
        run_sql(&db, &cfg, timeout, line);
    }
}

fn load(path: &str) -> Result<IotDb, Box<dyn std::error::Error>> {
    let store = etsqp::storage::tsfile::read(Path::new(path))?;
    Ok(IotDb::with_store(store, EngineOptions::default()))
}

/// Whether a load failure traces back to rejected (corrupt) input rather
/// than I/O or usage problems.
fn is_corrupt(mut e: &(dyn std::error::Error + 'static)) -> bool {
    loop {
        if let Some(s) = e.downcast_ref::<etsqp::storage::Error>() {
            return matches!(
                s,
                etsqp::storage::Error::Corrupt { .. } | etsqp::storage::Error::Encoding(_)
            );
        }
        if e.downcast_ref::<etsqp::encoding::Error>().is_some() {
            return true;
        }
        match e.source() {
            Some(src) => e = src,
            None => return false,
        }
    }
}

fn run_sql(db: &IotDb, cfg: &PipelineConfig, timeout: Option<Duration>, sql: &str) {
    let plan = match etsqp::core::sql::parse_statement(sql) {
        Ok(etsqp::core::sql::Statement::Query(p)) => p,
        Ok(etsqp::core::sql::Statement::Explain(p)) => {
            match etsqp::core::physical::pipe::explain(&p, db.store(), cfg) {
                Ok(text) => print!("{text}"),
                Err(e) => eprintln!("error: {e}"),
            }
            return;
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            return;
        }
    };
    let ctl = match timeout {
        Some(t) => CancellationToken::with_timeout(t),
        None => CancellationToken::none(),
    };
    match db.execute_ctl(&plan, cfg, &ctl) {
        Ok(r) => {
            println!("{}", r.columns.join(" | "));
            let shown = r.rows.len().min(20);
            for row in &r.rows[..shown] {
                let cells: Vec<String> = row.iter().map(fmt_value).collect();
                println!("{}", cells.join(" | "));
            }
            if r.rows.len() > shown {
                println!("… {} more rows", r.rows.len() - shown);
            }
            println!(
                "({} rows in {:.3} ms; pages {}+{} pruned, tuples {}+{} pruned)",
                r.rows.len(),
                r.elapsed.as_secs_f64() * 1e3,
                r.stats.pages_loaded,
                r.stats.pages_pruned,
                r.stats.tuples_scanned,
                r.stats.tuples_pruned,
            );
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

/// `.explain <sql>` — the compiled physical pipeline (the same rendering
/// as the SQL `EXPLAIN <query>` verb), followed by per-series storage
/// statistics from the page headers.
fn explain(db: &IotDb, cfg: &PipelineConfig, sql: &str) {
    let plan = match etsqp::core::sql::parse_statement(sql) {
        Ok(etsqp::core::sql::Statement::Query(p)) | Ok(etsqp::core::sql::Statement::Explain(p)) => {
            p
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            return;
        }
    };
    match etsqp::core::physical::pipe::explain(&plan, db.store(), cfg) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            return;
        }
    }
    for name in db.store().series_names() {
        if !format!("{plan:?}").contains(&format!("\"{name}\"")) {
            continue;
        }
        let Ok(pages) = db.store().peek_pages(&name) else {
            continue;
        };
        if pages.is_empty() {
            println!("  {name}: no pages");
            continue;
        }
        let h = &pages[0].header;
        let points: u64 = pages.iter().map(|p| p.header.count as u64).sum();
        let bytes: usize = pages.iter().map(|p| p.encoded_len()).sum();
        println!(
            "  {name}: {points} points, {} pages, {:.1} KB encoded, ts={}, val={}",
            pages.len(),
            bytes as f64 / 1e3,
            h.ts_encoding.name(),
            h.val_encoding.name(),
        );
        // `pages` is non-empty here (checked above), but a shell must
        // never panic on a display path — fall back to the first page's
        // header instead of unwrapping.
        println!(
            "    time range [{}, {}], value range [{}, {}]",
            h.first_ts,
            pages.last().map_or(h.last_ts, |p| p.header.last_ts),
            pages
                .iter()
                .map(|p| p.header.min_value)
                .min()
                .unwrap_or(h.min_value),
            pages
                .iter()
                .map(|p| p.header.max_value)
                .max()
                .unwrap_or(h.max_value),
        );
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:.4}"),
        Value::Null => "NULL".to_string(),
    }
}

/// Returns false to quit.
fn dot_command(rest: &str, db: &mut IotDb, cfg: &mut PipelineConfig) -> bool {
    let mut parts = rest.split_whitespace();
    match parts.next().unwrap_or("") {
        "quit" | "exit" | "q" => return false,
        "help" => {
            println!(".load <path> | .save <path> | .gen <spec> <rows> | .series");
            println!("EXPLAIN <sql> — render the compiled physical pipeline");
            println!(".explain <sql> — same, plus per-series storage statistics");
            println!(
                ".config [threads N] [prune on|off] [fuse none|delta|repeat] [vectorized on|off]"
            );
            println!(".stats | .quit — anything else is parsed as SQL");
        }
        "load" => match parts.next() {
            Some(path) => match load(path) {
                Ok(loaded) => {
                    *db = loaded;
                    println!("loaded {path}");
                }
                Err(e) => eprintln!("cannot load: {e}"),
            },
            None => eprintln!("usage: .load <path>"),
        },
        "save" => match parts.next() {
            Some(path) => match etsqp::storage::tsfile::write(db.store(), Path::new(path)) {
                Ok(()) => println!("saved {path}"),
                Err(e) => eprintln!("cannot save: {e}"),
            },
            None => eprintln!("usage: .save <path>"),
        },
        "gen" => {
            let spec = match parts.next().map(str::to_ascii_lowercase).as_deref() {
                Some("atm") => Spec::Atmosphere,
                Some("clim") => Spec::Climate,
                Some("gas") => Spec::Gas,
                Some("time") => Spec::Timestamp,
                Some("sine") => Spec::Sine,
                Some("tpch") => Spec::Tpch,
                _ => {
                    eprintln!("usage: .gen <atm|clim|gas|time|sine|tpch> <rows>");
                    return true;
                }
            };
            let rows: usize = parts.next().and_then(|r| r.parse().ok()).unwrap_or(100_000);
            let d = spec.generate(rows);
            for (i, (name, col)) in d.columns.iter().enumerate() {
                let series = format!("{}_{name}", d.label.to_ascii_lowercase());
                db.create_series(&series).ok();
                if let Err(e) = db.append_all(&series, &d.timestamps, col) {
                    eprintln!("ingest {series}: {e}");
                }
                let _ = i;
            }
            db.flush().ok();
            println!(
                "generated {} ({} rows × {} attrs)",
                d.name,
                d.rows(),
                d.attrs()
            );
        }
        "series" => {
            for name in db.store().series_names() {
                let pages = db.store().page_count(&name).unwrap_or(0);
                let points = db.store().point_count(&name).unwrap_or(0);
                println!("{name}: {points} points in {pages} pages");
            }
        }
        "config" => {
            let mut args: Vec<&str> = parts.collect();
            while args.len() >= 2 {
                let (key, val) = (args[0], args[1]);
                args.drain(..2);
                match (key, val) {
                    ("threads", n) => {
                        if let Ok(n) = n.parse() {
                            cfg.threads = n;
                        }
                    }
                    ("prune", v) => cfg.prune = v == "on",
                    ("vectorized", v) => cfg.vectorized = v == "on",
                    ("fuse", "none") => cfg.fuse = FuseLevel::None,
                    ("fuse", "delta") => cfg.fuse = FuseLevel::Delta,
                    ("fuse", "repeat") => cfg.fuse = FuseLevel::DeltaRepeat,
                    other => eprintln!("unknown option {other:?}"),
                }
            }
            println!(
                "threads={} prune={} fuse={:?} vectorized={} slicing={}",
                cfg.threads, cfg.prune, cfg.fuse, cfg.vectorized, cfg.allow_slicing
            );
        }
        "stats" => {
            let io = db.store().io();
            println!(
                "pages read: {}, bytes read: {}",
                io.pages_read(),
                io.bytes_read()
            );
        }
        other => eprintln!("unknown command .{other} (.help)"),
    }
    true
}
