//! `etsqp-cli` — an interactive shell for ETSQP databases.
//!
//! ```sh
//! cargo run --release --bin etsqp-cli -- [file.etsqp]
//! ```
//!
//! Commands:
//!
//! * any SQL statement (Table III dialect) — executed and printed;
//! * `EXPLAIN <sql>` — the compiled physical pipeline (per-page-group
//!   strategy, prune verdicts, merge partitions);
//! * `.load <path>` / `.save <path>` — TsFile persistence;
//! * `.gen <spec> <rows>` — ingest a synthetic Table II dataset
//!   (atm | clim | gas | time | sine | tpch);
//! * `.series` — list series with page/point counts;
//! * `.config [threads N] [prune on|off] [fuse none|delta|repeat]
//!   [vectorized on|off]` — inspect / adjust the pipeline;
//! * `.stats` — I/O counters; `.help`; `.quit`.

use std::io::{BufRead, Write};
use std::path::Path;

use etsqp::core::plan::PipelineConfig;
use etsqp::datasets::Spec;
use etsqp::{EngineOptions, FuseLevel, IotDb, Value};

fn main() {
    let mut db = IotDb::new(EngineOptions::default());
    let mut cfg = PipelineConfig::default();
    println!(
        "ETSQP shell — SIMD backend: {} — .help for commands",
        etsqp::simd::backend()
    );

    if let Some(path) = std::env::args().nth(1) {
        match load(&path) {
            Ok(loaded) => {
                db = loaded;
                println!("loaded {}", path);
            }
            Err(e) => eprintln!("cannot load {path}: {e}"),
        }
    }

    let stdin = std::io::stdin();
    loop {
        print!("etsqp> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".explain ") {
            explain(&db, &cfg, rest);
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            if !dot_command(rest, &mut db, &mut cfg) {
                break;
            }
            continue;
        }
        run_sql(&db, &cfg, line);
    }
}

fn load(path: &str) -> Result<IotDb, Box<dyn std::error::Error>> {
    let store = etsqp::storage::tsfile::read(Path::new(path))?;
    Ok(IotDb::with_store(store, EngineOptions::default()))
}

fn run_sql(db: &IotDb, cfg: &PipelineConfig, sql: &str) {
    let plan = match etsqp::core::sql::parse_statement(sql) {
        Ok(etsqp::core::sql::Statement::Query(p)) => p,
        Ok(etsqp::core::sql::Statement::Explain(p)) => {
            match etsqp::core::physical::pipe::explain(&p, db.store(), cfg) {
                Ok(text) => print!("{text}"),
                Err(e) => eprintln!("error: {e}"),
            }
            return;
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            return;
        }
    };
    match db.execute_with(&plan, cfg) {
        Ok(r) => {
            println!("{}", r.columns.join(" | "));
            let shown = r.rows.len().min(20);
            for row in &r.rows[..shown] {
                let cells: Vec<String> = row.iter().map(fmt_value).collect();
                println!("{}", cells.join(" | "));
            }
            if r.rows.len() > shown {
                println!("… {} more rows", r.rows.len() - shown);
            }
            println!(
                "({} rows in {:.3} ms; pages {}+{} pruned, tuples {}+{} pruned)",
                r.rows.len(),
                r.elapsed.as_secs_f64() * 1e3,
                r.stats.pages_loaded,
                r.stats.pages_pruned,
                r.stats.tuples_scanned,
                r.stats.tuples_pruned,
            );
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

/// `.explain <sql>` — the compiled physical pipeline (the same rendering
/// as the SQL `EXPLAIN <query>` verb), followed by per-series storage
/// statistics from the page headers.
fn explain(db: &IotDb, cfg: &PipelineConfig, sql: &str) {
    let plan = match etsqp::core::sql::parse_statement(sql) {
        Ok(etsqp::core::sql::Statement::Query(p)) | Ok(etsqp::core::sql::Statement::Explain(p)) => {
            p
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            return;
        }
    };
    match etsqp::core::physical::pipe::explain(&plan, db.store(), cfg) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            return;
        }
    }
    for name in db.store().series_names() {
        if !format!("{plan:?}").contains(&format!("\"{name}\"")) {
            continue;
        }
        let Ok(pages) = db.store().peek_pages(&name) else {
            continue;
        };
        if pages.is_empty() {
            println!("  {name}: no pages");
            continue;
        }
        let h = &pages[0].header;
        let points: u64 = pages.iter().map(|p| p.header.count as u64).sum();
        let bytes: usize = pages.iter().map(|p| p.encoded_len()).sum();
        println!(
            "  {name}: {points} points, {} pages, {:.1} KB encoded, ts={}, val={}",
            pages.len(),
            bytes as f64 / 1e3,
            h.ts_encoding.name(),
            h.val_encoding.name(),
        );
        // `pages` is non-empty here (checked above), but a shell must
        // never panic on a display path — fall back to the first page's
        // header instead of unwrapping.
        println!(
            "    time range [{}, {}], value range [{}, {}]",
            h.first_ts,
            pages.last().map_or(h.last_ts, |p| p.header.last_ts),
            pages
                .iter()
                .map(|p| p.header.min_value)
                .min()
                .unwrap_or(h.min_value),
            pages
                .iter()
                .map(|p| p.header.max_value)
                .max()
                .unwrap_or(h.max_value),
        );
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:.4}"),
        Value::Null => "NULL".to_string(),
    }
}

/// Returns false to quit.
fn dot_command(rest: &str, db: &mut IotDb, cfg: &mut PipelineConfig) -> bool {
    let mut parts = rest.split_whitespace();
    match parts.next().unwrap_or("") {
        "quit" | "exit" | "q" => return false,
        "help" => {
            println!(".load <path> | .save <path> | .gen <spec> <rows> | .series");
            println!("EXPLAIN <sql> — render the compiled physical pipeline");
            println!(".explain <sql> — same, plus per-series storage statistics");
            println!(
                ".config [threads N] [prune on|off] [fuse none|delta|repeat] [vectorized on|off]"
            );
            println!(".stats | .quit — anything else is parsed as SQL");
        }
        "load" => match parts.next() {
            Some(path) => match load(path) {
                Ok(loaded) => {
                    *db = loaded;
                    println!("loaded {path}");
                }
                Err(e) => eprintln!("cannot load: {e}"),
            },
            None => eprintln!("usage: .load <path>"),
        },
        "save" => match parts.next() {
            Some(path) => match etsqp::storage::tsfile::write(db.store(), Path::new(path)) {
                Ok(()) => println!("saved {path}"),
                Err(e) => eprintln!("cannot save: {e}"),
            },
            None => eprintln!("usage: .save <path>"),
        },
        "gen" => {
            let spec = match parts.next().map(str::to_ascii_lowercase).as_deref() {
                Some("atm") => Spec::Atmosphere,
                Some("clim") => Spec::Climate,
                Some("gas") => Spec::Gas,
                Some("time") => Spec::Timestamp,
                Some("sine") => Spec::Sine,
                Some("tpch") => Spec::Tpch,
                _ => {
                    eprintln!("usage: .gen <atm|clim|gas|time|sine|tpch> <rows>");
                    return true;
                }
            };
            let rows: usize = parts.next().and_then(|r| r.parse().ok()).unwrap_or(100_000);
            let d = spec.generate(rows);
            for (i, (name, col)) in d.columns.iter().enumerate() {
                let series = format!("{}_{name}", d.label.to_ascii_lowercase());
                db.create_series(&series).ok();
                if let Err(e) = db.append_all(&series, &d.timestamps, col) {
                    eprintln!("ingest {series}: {e}");
                }
                let _ = i;
            }
            db.flush().ok();
            println!(
                "generated {} ({} rows × {} attrs)",
                d.name,
                d.rows(),
                d.attrs()
            );
        }
        "series" => {
            for name in db.store().series_names() {
                let pages = db.store().page_count(&name).unwrap_or(0);
                let points = db.store().point_count(&name).unwrap_or(0);
                println!("{name}: {points} points in {pages} pages");
            }
        }
        "config" => {
            let mut args: Vec<&str> = parts.collect();
            while args.len() >= 2 {
                let (key, val) = (args[0], args[1]);
                args.drain(..2);
                match (key, val) {
                    ("threads", n) => {
                        if let Ok(n) = n.parse() {
                            cfg.threads = n;
                        }
                    }
                    ("prune", v) => cfg.prune = v == "on",
                    ("vectorized", v) => cfg.vectorized = v == "on",
                    ("fuse", "none") => cfg.fuse = FuseLevel::None,
                    ("fuse", "delta") => cfg.fuse = FuseLevel::Delta,
                    ("fuse", "repeat") => cfg.fuse = FuseLevel::DeltaRepeat,
                    other => eprintln!("unknown option {other:?}"),
                }
            }
            println!(
                "threads={} prune={} fuse={:?} vectorized={} slicing={}",
                cfg.threads, cfg.prune, cfg.fuse, cfg.vectorized, cfg.allow_slicing
            );
        }
        "stats" => {
            let io = db.store().io();
            println!(
                "pages read: {}, bytes read: {}",
                io.pages_read(),
                io.bytes_read()
            );
        }
        other => eprintln!("unknown command .{other} (.help)"),
    }
    true
}
