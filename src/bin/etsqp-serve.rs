//! `etsqp-serve` — the ETSQP network query server and its client mode.
//!
//! Server:
//!
//! ```sh
//! etsqp-serve --listen 127.0.0.1:7878 [--load file.etsqp] [--gen spec rows]
//!             [--max-inflight N] [--max-queue N] [--max-conns N]
//!             [--timeout-ms N] [--drain-ms N]
//! ```
//!
//! The server prints `listening on <addr>` once ready, then serves
//! until stdin reaches EOF or a `quit` line arrives, at which point it
//! drains gracefully: stops accepting, finishes (or cancels past the
//! drain deadline) in-flight queries, flushes responses, and exits 0.
//! Driving shutdown through stdin keeps scripted lifecycles simple:
//! `scripts/ci.sh` runs the smoke as  `etsqp-serve … < fifo`  and
//! closes the fifo to stop the server.
//!
//! Client mode (used by the CI smoke and handy for scripting):
//!
//! ```sh
//! etsqp-serve query --addr 127.0.0.1:7878 "SELECT COUNT(s) FROM s"
//! ```
//!
//! Exit codes (documented in README "Exit codes", shared with
//! `etsqp-cli` via `etsqp::core::Error::exit_code`): 0 success,
//! 1 generic failure, 2 usage, 3 corrupt input, 4 query timeout,
//! 5 shed with `Overloaded`, 6 cancelled.

use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use etsqp::core::engine::{EngineOptions, IotDb};
use etsqp::datasets::Spec;
use etsqp::serve::client::{Client, Response};
use etsqp::serve::proto::ErrorCode;
use etsqp::serve::{server, AdmissionConfig, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: etsqp-serve --listen HOST:PORT [--load FILE] [--gen SPEC ROWS]\n\
         \x20                 [--max-inflight N] [--max-queue N] [--max-conns N]\n\
         \x20                 [--timeout-ms N] [--drain-ms N]\n\
         \x20      etsqp-serve query --addr HOST:PORT \"SQL\""
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("query") {
        client_main(&args[1..]);
    }
    server_main(&args);
}

fn parse<T: std::str::FromStr>(v: Option<&String>) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => usage(),
    }
}

fn server_main(args: &[String]) -> ! {
    let mut listen: Option<String> = None;
    let mut load: Option<String> = None;
    let mut gen: Option<(String, usize)> = None;
    let mut cfg = ServeConfig::default();
    let mut admission = AdmissionConfig::default();

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => listen = Some(parse(it.next())),
            "--load" => load = Some(parse(it.next())),
            "--gen" => {
                let spec: String = parse(it.next());
                let rows: usize = parse(it.next());
                gen = Some((spec, rows));
            }
            "--max-inflight" => admission.max_inflight = parse(it.next()),
            "--max-queue" => admission.max_queue = parse(it.next()),
            "--max-conns" => cfg.max_connections = parse(it.next()),
            "--timeout-ms" => {
                admission.default_deadline = Some(Duration::from_millis(parse(it.next())))
            }
            "--drain-ms" => cfg.drain_timeout = Duration::from_millis(parse(it.next())),
            _ => usage(),
        }
    }
    cfg.admission = admission;
    let Some(listen) = listen else { usage() };

    let db = match load {
        Some(path) => match etsqp::storage::tsfile::read(Path::new(&path)) {
            Ok(store) => IotDb::with_store(store, EngineOptions::default()),
            Err(e) => {
                eprintln!("cannot load {path}: {e}");
                let code = etsqp::core::Error::from(e).exit_code();
                std::process::exit(code);
            }
        },
        None => IotDb::new(EngineOptions::default()),
    };
    if let Some((spec, rows)) = gen {
        let spec = match spec.as_str() {
            "atm" => Spec::Atmosphere,
            "clim" => Spec::Climate,
            "gas" => Spec::Gas,
            "time" => Spec::Timestamp,
            "sine" => Spec::Sine,
            "tpch" => Spec::Tpch,
            _ => usage(),
        };
        let d = spec.generate(rows);
        for (name, col) in &d.columns {
            let series = format!("{}_{name}", d.label.to_ascii_lowercase());
            let _ = db.create_series(&series);
            if let Err(e) = db.append_all(&series, &d.timestamps, col) {
                eprintln!("ingest {series}: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = db.flush() {
            eprintln!("flush: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "generated {} ({} rows x {} attrs)",
            d.name,
            d.rows(),
            d.attrs()
        );
    }

    let handle = match server::start(Arc::new(db), listen.as_str(), cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            std::process::exit(1);
        }
    };
    // Flushed line the smoke script waits for before connecting.
    println!("listening on {}", handle.addr());

    // Serve until stdin closes (or an explicit `quit`), then drain.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(l) if l.trim() == "stats" => {
                let s = handle.stats();
                eprintln!("{s:?}");
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let stats = handle.shutdown();
    eprintln!(
        "drained: {} queries ok, {} errors, {} shed, {} conns",
        stats.done_ok, stats.done_err, stats.shed, stats.conns_accepted
    );
    std::process::exit(0);
}

fn client_main(args: &[String]) -> ! {
    let mut addr: Option<String> = None;
    let mut sql: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(it.next())),
            _ if sql.is_none() => sql = Some(arg.clone()),
            _ => usage(),
        }
    }
    let (Some(addr), Some(sql)) = (addr, sql) else {
        usage()
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.query(&sql) {
        Ok(Response::Rows(r)) => {
            println!("{}", r.columns.join(" | "));
            for row in &r.rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|v| match v {
                        etsqp::Value::Int(i) => i.to_string(),
                        etsqp::Value::Float(f) => format!("{f:.4}"),
                        etsqp::Value::Null => "NULL".to_string(),
                    })
                    .collect();
                println!("{}", cells.join(" | "));
            }
            eprintln!("({} rows in {} us server-side)", r.rows.len(), r.elapsed_us);
            std::process::exit(0);
        }
        Ok(Response::ServerError(e)) => {
            eprintln!("server error: {e}");
            let code = match e.code {
                ErrorCode::Corrupt => 3,
                ErrorCode::Timeout => 4,
                ErrorCode::Overloaded => 5,
                ErrorCode::Cancelled => 6,
                _ => 1,
            };
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}
