//! # ETSQP — SIMD-vectorized aggregation pipelines over encoded IoT data
//!
//! A Rust reproduction of *"Exploring SIMD Vectorization in Aggregation
//! Pipelines for Encoded IoT Data"* (Kang, Song, Wang — ICDE 2025).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`simd`] — AVX2/scalar kernels: bit-unpacking (Figure 3), the
//!   Algorithm 1 delta-chain layout, filters, masked aggregation.
//! * [`encoding`] — the Table I codec zoo (TS2DIFF, RLE, Delta-RLE,
//!   Sprintz, RLBE, Gorilla, Chimp, Elf) over big-endian bit streams.
//! * [`storage`] — pages with pruning statistics, series receive buffers,
//!   an I/O-accounted store and a TsFile-lite container.
//! * [`core`] — the ETSQP engine: cost model (Prop. 1/Thm. 2), vectorized
//!   decode pipelines, operator fusion (§IV), pruning (§V), the
//!   Algorithm 2 planner/scheduler, SQL, and the [`IotDb`] facade.
//! * [`serve`] — the network query service: wire protocol, admission
//!   control with typed overload shedding, per-connection backpressure,
//!   graceful drain.
//! * [`fastlanes`], [`sboost`] — the reimplemented baselines of §VII-A.
//! * [`comparators`] — MonetDB-like / Spark-like stand-ins for Fig. 13.
//! * [`datasets`] — deterministic synthetics for Table II.
//!
//! ## Quickstart
//!
//! ```
//! use etsqp::{EngineOptions, IotDb};
//!
//! let db = IotDb::new(EngineOptions::default());
//! db.create_series("velocity").unwrap();
//! for i in 0..100_000i64 {
//!     db.append("velocity", i * 1000, 60 + (i % 25)).unwrap();
//! }
//! db.flush().unwrap();
//!
//! let r = db.query("SELECT AVG(velocity) FROM velocity \
//!                   WHERE time >= 10000000 AND time <= 90000000").unwrap();
//! println!("{:?} in {:?}", r.rows[0][0], r.elapsed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use etsqp_comparators as comparators;
pub use etsqp_core as core;
pub use etsqp_datasets as datasets;
pub use etsqp_encoding as encoding;
pub use etsqp_fastlanes as fastlanes;
pub use etsqp_sboost as sboost;
pub use etsqp_serve as serve;
pub use etsqp_simd as simd;
pub use etsqp_storage as storage;

pub use etsqp_core::engine::{EngineOptions, IotDb};
pub use etsqp_core::expr::{AggFunc, Plan, Predicate, SlidingWindow, TimeRange};
pub use etsqp_core::float::{FloatAgg, FloatRange};
pub use etsqp_core::fused::FuseLevel;
pub use etsqp_core::plan::{PipelineConfig, QueryResult, Value};
pub use etsqp_encoding::Encoding;
