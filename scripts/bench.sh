#!/usr/bin/env bash
# Short-query throughput benchmark: persistent work-stealing pool vs the
# spawn-per-query baseline, at 1/2/4/8 configured threads.
#
# Run from the repository root:
#   bash scripts/bench.sh
#
# Writes BENCH_pool.json at the repo root (per-thread-count q/s for both
# schedulers plus the 8-thread pool-vs-spawn speedup) and echoes the
# human-readable lines to stderr. Scale with ETSQP_BENCH_QUERIES
# (queries per cell, default 1000).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release -p etsqp-bench --bin pool_bench"
cargo build --release -p etsqp-bench --bin pool_bench

echo "==> pool_bench (ETSQP_BENCH_QUERIES=${ETSQP_BENCH_QUERIES:-1000}) -> BENCH_pool.json"
./target/release/pool_bench > BENCH_pool.json

echo "==> BENCH_pool.json"
cat BENCH_pool.json
