#!/usr/bin/env bash
# Short-query throughput benchmark: persistent work-stealing pool vs the
# spawn-per-query baseline, at 1/2/4/8 configured threads.
#
# Run from the repository root:
#   bash scripts/bench.sh
#
# Writes BENCH_pool.json at the repo root (per-thread-count q/s for both
# schedulers plus the 8-thread pool-vs-spawn speedup) and echoes the
# human-readable lines to stderr. Scale with ETSQP_BENCH_QUERIES
# (queries per cell, default 1000).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release -p etsqp-bench --bin pool_bench"
cargo build --release -p etsqp-bench --bin pool_bench

echo "==> pool_bench (ETSQP_BENCH_QUERIES=${ETSQP_BENCH_QUERIES:-1000}) -> BENCH_pool.json"
./target/release/pool_bench > BENCH_pool.json

echo "==> BENCH_pool.json"
cat BENCH_pool.json

# Nightly fuzz throughput profile: a longer deterministic fuzz run in
# release mode, reported as execs/sec (BENCH_fuzz.json). The gating
# 20k-iteration debug run lives in scripts/ci.sh; this one tracks the
# harness's throughput trajectory. Scale with ETSQP_FUZZ_BENCH_ITERS.
FUZZ_ITERS="${ETSQP_FUZZ_BENCH_ITERS:-100000}"
echo "==> cargo build --release -p xtask"
cargo build --release -p xtask

echo "==> xtask fuzz --iters ${FUZZ_ITERS} (release) -> BENCH_fuzz.json"
FUZZ_CORPUS="$(mktemp -d)"
FUZZ_LINE="$(./target/release/xtask fuzz --iters "${FUZZ_ITERS}" --seed 7 --corpus "${FUZZ_CORPUS}" | tail -1)"
rm -rf "${FUZZ_CORPUS}"
# "fuzz OK: <iters> iters, <targets> targets, <secs>s, <rate> execs/sec"
echo "${FUZZ_LINE}" | awk '{
    if ($2 != "OK:") { print "{\"error\": \"fuzz run failed\"}"; exit 1 }
    gsub(/,/, "", $3); gsub(/,/, "", $5); gsub(/s,?/, "", $7);
    printf "{\"iters\": %s, \"targets\": %s, \"seconds\": %s, \"execs_per_sec\": %s, \"seed\": 7}\n", $3, $5, $7, $8
}' > BENCH_fuzz.json

echo "==> BENCH_fuzz.json"
cat BENCH_fuzz.json

# Live-ingestion throughput: sharded hot-chunk store, 8 writers racing
# 8 query threads (BENCH_ingest.json: points/sec per shard count plus
# the sharded-vs-single-lock speedup). Non-gating; scale with
# ETSQP_BENCH_INGEST_POINTS (points per writer, default 200000).
echo "==> cargo build --release -p etsqp-bench --bin ingest_bench"
cargo build --release -p etsqp-bench --bin ingest_bench

echo "==> ingest_bench (ETSQP_BENCH_INGEST_POINTS=${ETSQP_BENCH_INGEST_POINTS:-200000}) -> BENCH_ingest.json"
./target/release/ingest_bench > BENCH_ingest.json

echo "==> BENCH_ingest.json"
cat BENCH_ingest.json

# Decode throughput per codec × SIMD backend (BENCH_decode.json): every
# integer codec through decode_column, the float codecs, the raw Stream
# VByte quad kernel, and the FastLanes/SBoost baselines, measured once
# per backend (scalar / avx2 / avx512 as the CPU allows) via child
# re-exec. Non-gating; scale with ETSQP_BENCH_DECODE_INTS (column
# length, default 262144).
echo "==> cargo build --release -p etsqp-bench --bin decode_bench"
cargo build --release -p etsqp-bench --bin decode_bench

echo "==> decode_bench (ETSQP_BENCH_DECODE_INTS=${ETSQP_BENCH_DECODE_INTS:-262144}) -> BENCH_decode.json"
./target/release/decode_bench > BENCH_decode.json

echo "==> BENCH_decode.json"
cat BENCH_decode.json

# Network service load (BENCH_serve.json): closed-loop client fleets at
# 1/64/1024 connections (qps + p99), plus a 2x-overload cell measuring
# the typed shed rate and the p99 of accepted queries, which must stay
# within 3x the uncontended p99 — shedding, not queueing, absorbs the
# overload. Non-gating; scale with ETSQP_BENCH_SERVE_QUERIES (total
# queries per cell, default 2000) and ETSQP_BENCH_SERVE_MAX_CLIENTS
# (fleet-size cap, default 1024).
echo "==> cargo build --release -p etsqp-bench --bin serve_bench"
cargo build --release -p etsqp-bench --bin serve_bench

echo "==> serve_bench (ETSQP_BENCH_SERVE_QUERIES=${ETSQP_BENCH_SERVE_QUERIES:-2000}) -> BENCH_serve.json"
./target/release/serve_bench > BENCH_serve.json

echo "==> BENCH_serve.json"
cat BENCH_serve.json

# Bucketed aggregation + partial cache (BENCH_bucket.json): fused
# single-bucket pages vs the straddling decode path, and P95 / bucketed
# SUM with the per-page partial cache cold vs warm. The headline
# p95_warm_speedup is the ISSUE 9 acceptance number (warm >= 5x cold).
# Non-gating; scale with ETSQP_BENCH_BUCKET_REPS (reps per cell,
# default 30).
echo "==> cargo build --release -p etsqp-bench --bin bucket_bench"
cargo build --release -p etsqp-bench --bin bucket_bench

echo "==> bucket_bench (ETSQP_BENCH_BUCKET_REPS=${ETSQP_BENCH_BUCKET_REPS:-30}) -> BENCH_bucket.json"
./target/release/bucket_bench > BENCH_bucket.json

echo "==> BENCH_bucket.json"
cat BENCH_bucket.json
