#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#   bash scripts/ci.sh
#
# The differential oracle sweep (tests/differential.rs) runs as part of
# `cargo test` and is the strongest check here — several thousand
# engine-vs-oracle cases across every codec, dataset and pipeline
# configuration.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"
