#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#   bash scripts/ci.sh
#
# The differential oracle sweep (tests/differential.rs) runs as part of
# `cargo test` and is the strongest check here — several thousand
# engine-vs-oracle cases across every codec, dataset and pipeline
# configuration.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Repo-specific static analysis (crates/xtask): SAFETY comments on every
# unsafe, no panics in engine hot paths, no lossy kernel casts, no
# wrapping kernel accumulators, ingest lock-order, crate hygiene
# attributes. Prints one `rule: count` summary line on failure.
echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

# Physical-plan IR verifier (crates/xtask + crates/core/src/physical/
# verify.rs): compiles every query shape x codec x dataset x pipeline
# config cell, checks the structural invariants (DESIGN.md §13) on each
# plan, and asserts that mutated/corrupted plans are rejected with typed
# violations.
echo "==> cargo run -p xtask -- verify-plans"
cargo run -q -p xtask -- verify-plans

# Deterministic decoder fuzzing (crates/xtask): mutated codec streams,
# page images, tsfile images, partial-state wire images and network
# wire frames (the `proto` target) must never panic a decoder or break
# round-trip consistency — a typed error is the only acceptable failure.
# Runs in debug mode on purpose: overflow/shift panics are live there.
# Scale with ETSQP_FUZZ_ITERS (default 20000, the gating profile).
echo "==> cargo run -p xtask -- fuzz --iters ${ETSQP_FUZZ_ITERS:-20000} --seed 5"
cargo run -q -p xtask -- fuzz --iters "${ETSQP_FUZZ_ITERS:-20000}" --seed 5

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Deterministic interleaving model checks (shims/loom): deque
# push/steal/pop triangle and the pool latch shutdown/panic protocol,
# explored over bounded schedule permutations.
echo "==> cargo test -q -p crossbeam --features model"
cargo test -q -p crossbeam --features model

# Runtime lock-order tracking (shims/parking_lot lockdep feature): the
# storage suite plus tests/lockdep.rs run with classed locks recording
# acquisition edges; an inversion of the declared shard -> series order
# panics deterministically instead of deadlocking under load.
echo "==> cargo test -q -p etsqp-storage --features lockdep"
cargo test -q -p etsqp-storage --features lockdep

# Non-gating serve smoke: start the network server over a generated
# dataset, run three queries through the wire client, then shut down via
# the stdin `quit` line and confirm the graceful drain reported. Client
# exit codes follow the README "Exit codes" table.
echo "==> serve smoke (non-gating)"
serve_smoke() (
    set -euo pipefail
    cargo build -q --bin etsqp-serve
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' EXIT
    mkfifo "${dir}/ctl"
    # Hold a read-write fd on the fifo so the server's stdin stays open
    # between control lines.
    exec 3<>"${dir}/ctl"
    ./target/debug/etsqp-serve --listen 127.0.0.1:0 --gen sine 20000 \
        <"${dir}/ctl" >"${dir}/out" 2>"${dir}/err" &
    srv=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "${dir}/out" | head -1)"
        [ -n "${addr}" ] && break
        sleep 0.1
    done
    [ -n "${addr}" ] || { echo "server never came up"; exit 1; }
    for sql in "SELECT COUNT(sine_sine0) FROM sine_sine0" \
               "SELECT SUM(sine_sine1) FROM sine_sine1" \
               "SELECT AVG(sine_sine2) FROM sine_sine2"; do
        ./target/debug/etsqp-serve query --addr "${addr}" "${sql}" >/dev/null
    done
    echo quit >&3
    wait "${srv}"
    grep -q "drained:" "${dir}/err"
)
serve_smoke || echo "WARN: serve smoke failed (non-gating)"

# Non-gating: Miri over the scalar decode paths (UB detection on the
# bit-level codecs). Skipped gracefully where the miri component is not
# installed.
if cargo miri --version >/dev/null 2>&1; then
    echo "==> cargo miri test -p etsqp-encoding (non-gating)"
    MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -q -p etsqp-encoding \
        || echo "WARN: miri run failed (non-gating)"
else
    echo "==> miri unavailable, skipping (non-gating)"
fi

# Non-gating perf smoke: pool-vs-spawn short-query throughput trajectory
# (BENCH_pool.json). A perf regression here is a signal, not a failure.
echo "==> scripts/bench.sh (non-gating smoke)"
ETSQP_BENCH_QUERIES="${ETSQP_BENCH_QUERIES:-100}" \
ETSQP_BENCH_SERVE_QUERIES="${ETSQP_BENCH_SERVE_QUERIES:-200}" \
ETSQP_BENCH_SERVE_MAX_CLIENTS="${ETSQP_BENCH_SERVE_MAX_CLIENTS:-64}" \
    bash scripts/bench.sh \
    || echo "WARN: bench smoke failed (non-gating)"

echo "CI OK"
