#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#   bash scripts/ci.sh
#
# The differential oracle sweep (tests/differential.rs) runs as part of
# `cargo test` and is the strongest check here — several thousand
# engine-vs-oracle cases across every codec, dataset and pipeline
# configuration.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Repo-specific static analysis (crates/xtask): SAFETY comments on every
# unsafe, no panics in engine hot paths, no lossy kernel casts, crate
# hygiene attributes. Prints one `rule: count` summary line on failure.
echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

# Deterministic decoder fuzzing (crates/xtask): mutated codec streams,
# page images and tsfile images must never panic a decoder or break
# round-trip consistency — Err(Corrupt) is the only acceptable failure.
# Runs in debug mode on purpose: overflow/shift panics are live there.
# Scale with ETSQP_FUZZ_ITERS (default 20000, the gating profile).
echo "==> cargo run -p xtask -- fuzz --iters ${ETSQP_FUZZ_ITERS:-20000} --seed 5"
cargo run -q -p xtask -- fuzz --iters "${ETSQP_FUZZ_ITERS:-20000}" --seed 5

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Deterministic interleaving model checks (shims/loom): deque
# push/steal/pop triangle and the pool latch shutdown/panic protocol,
# explored over bounded schedule permutations.
echo "==> cargo test -q -p crossbeam --features model"
cargo test -q -p crossbeam --features model

# Non-gating perf smoke: pool-vs-spawn short-query throughput trajectory
# (BENCH_pool.json). A perf regression here is a signal, not a failure.
echo "==> scripts/bench.sh (non-gating smoke)"
ETSQP_BENCH_QUERIES="${ETSQP_BENCH_QUERIES:-100}" bash scripts/bench.sh \
    || echo "WARN: bench smoke failed (non-gating)"

echo "CI OK"
