#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
#
# Usage: scripts/reproduce.sh [rows]
#   rows — rows per dataset (default 200000; the paper's billion-row
#          datasets are scaled to this cap, recorded in each output).
set -euo pipefail
cd "$(dirname "$0")/.."
ROWS="${1:-200000}"
export ETSQP_BENCH_ROWS="$ROWS"
mkdir -p results
cargo build --release -p etsqp-bench --bins
for b in table1 table2 table3 fig10 fig11 fig12 fig13 fig14; do
  echo "=== $b (rows=$ROWS) ==="
  ./target/release/$b | tee "results/$b.txt"
done
echo "=== criterion benches ==="
cargo bench --workspace 2>&1 | tee results/criterion.txt
echo "done — see results/ and EXPERIMENTS.md"
